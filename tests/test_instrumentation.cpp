// Tests of the scheduler instrumentation layer: counters surfaced through
// ScheduleResult, the EventSink observer, the internal consistency between
// the two, and the aggregation into perf::SuiteMetrics.
#include <gtest/gtest.h>

#include <array>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "perf/runner.h"
#include "workload/kernels.h"
#include "workload/perfect_synth.h"

namespace hcrf::core {
namespace {

MachineConfig Machine(const std::string& rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

TEST(Instrumentation, CountersNonzeroOnConstrainedSuite) {
  // The tightest clustered organization forces force-and-eject churn and
  // II escalation across a synthetic slice; the counters must see it.
  const MachineConfig m = Machine("8C16S16/1-1");
  workload::SynthParams p;
  p.num_loops = 40;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  long ejections = 0;
  long restarts = 0;
  double budget = 0;
  long attempts = 0;
  int scheduled = 0;
  for (const auto& loop : suite.loops()) {
    const ScheduleResult sr = MirsHC(loop.ddg, m);
    if (!sr.ok) continue;
    ++scheduled;
    ejections += sr.stats.ejections;
    restarts += sr.stats.restarts;
    budget += sr.stats.budget_spent;
    attempts += sr.stats.attempts;
    // Every scheduled loop spent at least one attempt per node.
    EXPECT_GE(sr.stats.attempts, loop.ddg.NumNodes());
  }
  ASSERT_GT(scheduled, 0);
  EXPECT_GT(ejections, 0);
  EXPECT_GT(restarts, 0);
  EXPECT_GT(budget, 0.0);
  EXPECT_GT(attempts, 0);
}

TEST(Instrumentation, SpillCountersFireOnSmallRegisterFile) {
  // 32 registers cannot hold the synthetic suite's pressure: the spill
  // engine must report decisions, and the memory-op recount must agree
  // that traffic was added.
  const MachineConfig s32 = Machine("S32");
  workload::SynthParams p;
  p.num_loops = 80;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  long spill_decisions = 0;
  long spill_mem_ops = 0;
  for (const auto& loop : suite.loops()) {
    const ScheduleResult sr = MirsHC(loop.ddg, s32);
    if (!sr.ok) continue;
    spill_decisions += sr.stats.spills_inserted;
    spill_mem_ops += sr.stats.spill_loads + sr.stats.spill_stores;
  }
  EXPECT_GT(spill_decisions, 0);
  EXPECT_GT(spill_mem_ops, 0);
}

class CountingSink : public EventSink {
 public:
  void OnEvent(SchedEvent e, NodeId node, int ii) override {
    (void)node;
    (void)ii;
    ++counts_[static_cast<size_t>(e)];
  }
  long Of(SchedEvent e) const { return counts_[static_cast<size_t>(e)]; }

 private:
  std::array<long, 8> counts_{};
};

TEST(Instrumentation, EventStreamMatchesCounters) {
  // Events and counters are two views of the same funnel; they must agree
  // on every loop, including budget-constrained ones.
  const MachineConfig m = Machine("8C16S16/1-1");
  workload::SynthParams p;
  p.num_loops = 15;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  for (const auto& loop : suite.loops()) {
    CountingSink sink;
    MirsOptions opt;
    opt.event_sink = &sink;
    const ScheduleResult sr = MirsHC(loop.ddg, m, opt);
    EXPECT_EQ(sink.Of(SchedEvent::kNodePlaced) +
                  sink.Of(SchedEvent::kNodeForced) +
                  sink.Of(SchedEvent::kChainBuilt),
              sr.stats.attempts)
        << loop.ddg.name();
    EXPECT_EQ(sink.Of(SchedEvent::kNodeEjected), sr.stats.ejections)
        << loop.ddg.name();
    EXPECT_EQ(sink.Of(SchedEvent::kNodeForced), sr.stats.force_places)
        << loop.ddg.name();
    EXPECT_EQ(sink.Of(SchedEvent::kSpillInserted), sr.stats.spills_inserted)
        << loop.ddg.name();
    EXPECT_EQ(sink.Of(SchedEvent::kChainUndone), sr.stats.chains_undone)
        << loop.ddg.name();
  }
}

TEST(Instrumentation, BudgetSpendEqualsPlacementAttempts) {
  // Each placement (found or forced) spends 1.0 budget; communication
  // chains charge an attempt without spending budget. So budget_spent ==
  // attempts - chains_built, and the grant never exceeds its cap.
  const MachineConfig m = Machine("4C16S16/2-1");
  workload::SynthParams p;
  p.num_loops = 25;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  for (const auto& loop : suite.loops()) {
    const ScheduleResult sr = MirsHC(loop.ddg, m);
    EXPECT_DOUBLE_EQ(sr.stats.budget_spent,
                     static_cast<double>(sr.stats.attempts) -
                         static_cast<double>(sr.stats.chains_built))
        << loop.ddg.name();
    // The grant cap is per II attempt and a successful run makes at most
    // restarts + 1 attempts (each attempt advances the II by >= 1).
    // Failed runs report restarts = 0, so the bound only applies to ok.
    if (sr.ok) {
      const double cap = 8.0 * 6.0 * std::max(4, loop.ddg.NumNodes());
      EXPECT_LE(sr.stats.budget_granted,
                cap * (sr.stats.restarts + 1) + 1e-9)
          << loop.ddg.name();
    }
  }
}

TEST(Instrumentation, QuietOnUnconstrainedMachine) {
  // Unbounded monolithic RF with ample resources: no ejections, no spills,
  // no restarts on a simple kernel.
  const MachineConfig m = Machine("S128");
  const auto loop = workload::MakeDaxpy();
  const ScheduleResult sr = MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  EXPECT_EQ(sr.stats.ejections, 0);
  EXPECT_EQ(sr.stats.spills_inserted, 0);
  EXPECT_EQ(sr.stats.restarts, 0);
  EXPECT_EQ(sr.stats.force_places, 0);
}

TEST(Instrumentation, SuiteMetricsAggregateSchedulerCounters) {
  const MachineConfig m = Machine("8C16S16/1-1");
  workload::SynthParams p;
  p.num_loops = 40;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  const perf::SuiteMetrics sm = perf::RunSuite(suite, m);
  EXPECT_GT(sm.ejections, 0);
  EXPECT_GT(sm.ii_restarts, 0);
  EXPECT_GT(sm.budget_spent, 0.0);

  // The aggregate equals the sum of the per-loop metrics.
  const auto det = perf::RunSuiteDetailed(suite, m);
  long ej = 0;
  long rs = 0;
  for (const auto& lm : det) {
    if (!lm.ok) continue;
    ej += lm.ejections;
    rs += lm.ii_restarts;
  }
  EXPECT_EQ(sm.ejections, ej);
  EXPECT_EQ(sm.ii_restarts, rs);
}

}  // namespace
}  // namespace hcrf::core
