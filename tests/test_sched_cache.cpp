// Persistent schedule cache: hits return bit-identical results, corrupted
// and stale entries are detected and fall through to a fresh schedule, and
// the structural key separates what must be separated.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/mirs.h"
#include "io/hcl.h"
#include "service/sched_cache.h"
#include "workload/kernels.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;
using service::CacheKey;
using service::MakeCacheKey;
using service::ScheduleCache;

class SchedCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("hcrf-cache-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string EntryPathOf(const CacheKey& key) const {
    return (dir_ / (key.Hex() + ".hclc")).string();
  }

  fs::path dir_;
};

TEST_F(SchedCacheTest, HitReturnsBitIdenticalResult) {
  const workload::Loop loop = workload::MakeHydro();
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  const core::MirsOptions opt;
  const core::ScheduleResult fresh = core::MirsHC(loop.ddg, m, opt);
  ASSERT_TRUE(fresh.ok);

  ScheduleCache cache(dir_.string());
  const CacheKey key = MakeCacheKey(loop.ddg, m, opt);
  EXPECT_FALSE(cache.Get(key).has_value());  // cold
  cache.Put(key, fresh);
  const auto hit = cache.Get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(io::DumpResult(fresh), io::DumpResult(*hit));

  const ScheduleCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.rejects, 0);
  EXPECT_EQ(s.writes, 1);
}

TEST_F(SchedCacheTest, EntriesPersistAcrossCacheInstances) {
  const workload::Loop loop = workload::MakeDaxpy();
  const MachineConfig m = MachineConfig::Baseline();
  const core::MirsOptions opt;
  const core::ScheduleResult fresh = core::MirsHC(loop.ddg, m, opt);
  ASSERT_TRUE(fresh.ok);
  const CacheKey key = MakeCacheKey(loop.ddg, m, opt);
  {
    ScheduleCache writer(dir_.string());
    writer.Put(key, fresh);
  }
  ScheduleCache reader(dir_.string());
  const auto hit = reader.Get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(io::DumpResult(fresh), io::DumpResult(*hit));
}

TEST_F(SchedCacheTest, CorruptedEntryIsRejectedAndFallsThrough) {
  const workload::Loop loop = workload::MakeDot();
  const MachineConfig m = MachineConfig::Baseline();
  const core::MirsOptions opt;
  const core::ScheduleResult fresh = core::MirsHC(loop.ddg, m, opt);
  ASSERT_TRUE(fresh.ok);

  ScheduleCache cache(dir_.string());
  const CacheKey key = MakeCacheKey(loop.ddg, m, opt);
  cache.Put(key, fresh);

  // Flip a digit inside the body; the checksum must catch it.
  const std::string path = EntryPathOf(key);
  std::string text = io::ReadFile(path);
  const size_t pos = text.find("ii ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 3] = text[pos + 3] == '9' ? '8' : '9';
  std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

  EXPECT_FALSE(cache.Get(key).has_value());
  EXPECT_EQ(cache.stats().rejects, 1);

  // Fall through: re-scheduling and re-putting heals the entry.
  cache.Put(key, fresh);
  const auto hit = cache.Get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(io::DumpResult(fresh), io::DumpResult(*hit));
}

TEST_F(SchedCacheTest, TruncatedEntryIsRejected) {
  const workload::Loop loop = workload::MakeVadd();
  const MachineConfig m = MachineConfig::Baseline();
  const core::MirsOptions opt;
  const core::ScheduleResult fresh = core::MirsHC(loop.ddg, m, opt);
  ASSERT_TRUE(fresh.ok);

  ScheduleCache cache(dir_.string());
  const CacheKey key = MakeCacheKey(loop.ddg, m, opt);
  cache.Put(key, fresh);

  const std::string path = EntryPathOf(key);
  const std::string text = io::ReadFile(path);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << text.substr(0, text.size() / 2);

  EXPECT_FALSE(cache.Get(key).has_value());
  EXPECT_EQ(cache.stats().rejects, 1);
}

TEST_F(SchedCacheTest, StaleEntryUnderTheWrongKeyIsRejected) {
  const workload::Loop loop = workload::MakeDaxpy();
  const MachineConfig m = MachineConfig::Baseline();
  core::MirsOptions opt;
  const core::ScheduleResult fresh = core::MirsHC(loop.ddg, m, opt);
  ASSERT_TRUE(fresh.ok);

  ScheduleCache cache(dir_.string());
  const CacheKey key = MakeCacheKey(loop.ddg, m, opt);
  cache.Put(key, fresh);

  // Simulate a stale/misfiled entry: the bytes of `key`'s entry placed
  // where a different key's entry should live. The embedded key header
  // must reject it even though checksum and body are intact.
  opt.budget_ratio = 11.0;
  const CacheKey other = MakeCacheKey(loop.ddg, m, opt);
  ASSERT_FALSE(other == key);
  fs::copy_file(EntryPathOf(key), EntryPathOf(other));
  EXPECT_FALSE(cache.Get(other).has_value());
  EXPECT_EQ(cache.stats().rejects, 1);
}

TEST_F(SchedCacheTest, KeySeparatesScheduleRelevantContent) {
  const workload::Loop loop = workload::MakeStencil3();
  const MachineConfig base = MachineConfig::Baseline();
  const core::MirsOptions opt;
  const CacheKey key = MakeCacheKey(loop.ddg, base, opt);

  // Same content, fresh objects -> same key (content addressing).
  EXPECT_TRUE(MakeCacheKey(workload::MakeStencil3().ddg, base, opt) == key);

  // The cached result embeds the graph name, so structurally identical
  // loops under different names must get different keys (a hit must be
  // bit-identical to a fresh schedule).
  workload::Loop renamed = workload::MakeStencil3();
  renamed.ddg.set_name("stencil3-renamed");
  EXPECT_FALSE(MakeCacheKey(renamed.ddg, base, opt) == key);

  // Machine, options and graph perturbations -> different keys.
  MachineConfig m2 = base;
  m2.rf = RFConfig::Parse("4C16S64/2-1");
  EXPECT_FALSE(MakeCacheKey(loop.ddg, m2, opt) == key);

  MachineConfig m3 = base;
  m3.lat.fmul = 5;
  EXPECT_FALSE(MakeCacheKey(loop.ddg, m3, opt) == key);

  core::MirsOptions o2;
  o2.iterative = false;
  EXPECT_FALSE(MakeCacheKey(loop.ddg, base, o2) == key);

  workload::Loop mutated = workload::MakeStencil3();
  mutated.ddg.AddEdge(0, 1, DepKind::kMem, 1);
  EXPECT_FALSE(MakeCacheKey(mutated.ddg, base, opt) == key);

  // Latency overrides (binding prefetching) are part of the key.
  sched::LatencyOverrides ov;
  ov.producer_latency.assign(4, 0);
  ov.producer_latency[0] = 10;
  EXPECT_FALSE(MakeCacheKey(loop.ddg, base, opt, ov) == key);
}

// Zero override entries are behaviorally inert: vectors that differ only
// in trailing-zero padding must share a key — and, since the engine
// canonicalizes its overrides, a padded request's fresh schedule is
// bit-identical to the trimmed request's cached one.
TEST_F(SchedCacheTest, PaddedOverrideVectorsKeyIdentically) {
  const workload::Loop loop = workload::MakeDaxpy();
  const MachineConfig m = MachineConfig::Baseline();
  const core::MirsOptions opt;

  sched::LatencyOverrides trimmed;
  trimmed.producer_latency = {0, 10};
  sched::LatencyOverrides padded;
  padded.producer_latency = {0, 10, 0, 0, 0};
  EXPECT_TRUE(MakeCacheKey(loop.ddg, m, opt, trimmed) ==
              MakeCacheKey(loop.ddg, m, opt, padded));

  sched::LatencyOverrides all_zero;
  all_zero.producer_latency = {0, 0, 0};
  EXPECT_TRUE(MakeCacheKey(loop.ddg, m, opt) ==
              MakeCacheKey(loop.ddg, m, opt, all_zero));

  sched::LatencyOverrides different;
  different.producer_latency = {0, 11};
  EXPECT_FALSE(MakeCacheKey(loop.ddg, m, opt, different) ==
               MakeCacheKey(loop.ddg, m, opt, trimmed));

  const core::ScheduleResult a = core::MirsHC(loop.ddg, m, opt, trimmed);
  const core::ScheduleResult b = core::MirsHC(loop.ddg, m, opt, padded);
  EXPECT_EQ(io::DumpResult(a), io::DumpResult(b));
}

TEST_F(SchedCacheTest, ScanCountsEntries) {
  const MachineConfig m = MachineConfig::Baseline();
  const core::MirsOptions opt;
  ScheduleCache cache(dir_.string());
  int stored = 0;
  for (const workload::Loop& loop :
       {workload::MakeDaxpy(), workload::MakeDot(), workload::MakeVdiv()}) {
    const core::ScheduleResult r = core::MirsHC(loop.ddg, m, opt);
    ASSERT_TRUE(r.ok);
    cache.Put(MakeCacheKey(loop.ddg, m, opt), r);
    ++stored;
  }
  const ScheduleCache::DirStats ds = ScheduleCache::Scan(dir_.string());
  EXPECT_EQ(ds.entries, stored);
  EXPECT_GT(ds.bytes, 0);
}

}  // namespace
}  // namespace hcrf
