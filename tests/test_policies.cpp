// Tests of the policy layer: enum-selected and factory-injected cluster
// selectors agree, custom policies plug in through MirsOptions, and the
// engine respects their decisions.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "sched/validate.h"
#include "workload/kernels.h"
#include "workload/perfect_synth.h"

namespace hcrf::core {
namespace {

MachineConfig Machine(const std::string& rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

TEST(Policies, FactoryMatchesEnumSelection) {
  const MachineConfig m = Machine("4C32/1-1");
  workload::SynthParams p;
  p.num_loops = 20;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  for (ClusterPolicy pol : {ClusterPolicy::kBalanced,
                            ClusterPolicy::kRoundRobin,
                            ClusterPolicy::kFirstFit}) {
    MirsOptions via_enum;
    via_enum.cluster_policy = pol;
    MirsOptions via_factory;
    via_factory.cluster_selector = MakeClusterSelectorFactory(pol);
    for (const auto& loop : suite.loops()) {
      const ScheduleResult a = MirsHC(loop.ddg, m, via_enum);
      const ScheduleResult b = MirsHC(loop.ddg, m, via_factory);
      ASSERT_EQ(a.ok, b.ok) << loop.ddg.name() << " " << ToString(pol);
      if (!a.ok) continue;
      EXPECT_EQ(a.ii, b.ii) << loop.ddg.name() << " " << ToString(pol);
      EXPECT_EQ(a.stats.comm_ops, b.stats.comm_ops)
          << loop.ddg.name() << " " << ToString(pol);
    }
  }
}

/// Pins every free node to cluster 0 and counts how often it was asked.
class PinToZeroSelector : public ClusterSelector {
 public:
  explicit PinToZeroSelector(std::shared_ptr<std::atomic<long>> calls)
      : calls_(std::move(calls)) {}
  std::string_view name() const override { return "pin-to-zero"; }
  int Select(const SchedState& st, NodeId u) override {
    (void)st;
    (void)u;
    ++*calls_;
    return 0;
  }

 private:
  std::shared_ptr<std::atomic<long>> calls_;
};

TEST(Policies, CustomSelectorIsConsultedAndRespected) {
  const MachineConfig m = Machine("4C32/1-1");
  const auto loop = workload::MakeDaxpy();
  auto calls = std::make_shared<std::atomic<long>>(0);
  MirsOptions opt;
  opt.cluster_selector = [calls] {
    return std::make_unique<PinToZeroSelector>(calls);
  };
  const ScheduleResult sr = MirsHC(loop.ddg, m, opt);
  ASSERT_TRUE(sr.ok);
  EXPECT_GT(calls->load(), 0);
  // Everything on one cluster of a pure clustered machine: no moves.
  EXPECT_EQ(sr.stats.move_ops, 0);
  for (NodeId v = 0; v < sr.graph.NumSlots(); ++v) {
    if (!sr.graph.IsAlive(v)) continue;
    EXPECT_EQ(sr.schedule.ClusterOf(v), 0) << "node " << v;
  }
  const auto vr = sched::Validate(sr.graph, sr.schedule, m, sr.overrides);
  EXPECT_TRUE(vr.ok) << vr.error;
}

/// Declines every register spill (invariant spilling may still fire).
class NeverSpillPolicy : public SpillVictimPolicy {
 public:
  std::string_view name() const override { return "never"; }
  const sched::ValueLifetime* Pick(
      const std::vector<const sched::ValueLifetime*>& candidates)
      const override {
    (void)candidates;
    return nullptr;
  }
};

TEST(Policies, CustomSpillPolicysuppressesLifetimeSpills) {
  const MachineConfig s32 = Machine("S32");
  workload::SynthParams p;
  p.num_loops = 40;
  const workload::Suite suite = workload::PerfectSynthetic(p);
  MirsOptions opt;
  opt.spill_policy = std::make_shared<const NeverSpillPolicy>();
  for (const auto& loop : suite.loops()) {
    const ScheduleResult sr = MirsHC(loop.ddg, s32, opt);
    if (!sr.ok) continue;
    // No store-side spill copies can exist when every victim is declined
    // (invariant reloads add loads only).
    EXPECT_EQ(sr.stats.spill_stores, 0) << loop.ddg.name();
    const auto vr = sched::Validate(sr.graph, sr.schedule, s32, sr.overrides);
    EXPECT_TRUE(vr.ok) << loop.ddg.name() << ": " << vr.error;
  }
}

/// Worst-case ordering: ascending node id, ignoring the dependence shape.
class IdOrderPolicy : public NodeOrderPolicy {
 public:
  std::string_view name() const override { return "id-order"; }
  std::vector<NodeId> Order(const DDG& g,
                            const MachineConfig& m) const override {
    (void)m;
    return g.AliveNodes();
  }
};

TEST(Policies, CustomOrderingStillSchedulesValidly) {
  const MachineConfig m = Machine("1C32S64/4-2");
  MirsOptions opt;
  opt.ordering = std::make_shared<const IdOrderPolicy>();
  for (const auto& loop :
       {workload::MakeDaxpy(), workload::MakeFir4(), workload::MakeDot()}) {
    const ScheduleResult sr = MirsHC(loop.ddg, m, opt);
    ASSERT_TRUE(sr.ok) << loop.ddg.name();
    const auto vr = sched::Validate(sr.graph, sr.schedule, m, sr.overrides);
    EXPECT_TRUE(vr.ok) << loop.ddg.name() << ": " << vr.error;
  }
}

}  // namespace
}  // namespace hcrf::core
