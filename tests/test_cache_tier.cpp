// Tiered schedule cache: memory-tier LRU/byte bounds, disk promotion,
// write-behind durability after Drain(), and bit-identity of results
// served from every tier. The concurrent hammer runs under TSan in CI.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/mirs.h"
#include "io/hcl.h"
#include "service/cache_tier.h"
#include "service/sched_cache.h"
#include "workload/kernels.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;
using service::CacheKey;
using service::DiskTier;
using service::MakeCacheKey;
using service::MakeStructuralHash;
using service::MemoryTier;
using service::TieredCache;
using service::TierStats;

class CacheTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("hcrf-tier-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fresh two-tier stack over this test's directory.
  std::unique_ptr<TieredCache> MakeStack(long mem_entries, long mem_bytes = 0,
                                         bool write_behind = true) {
    MemoryTier::Config mcfg;
    mcfg.max_entries = mem_entries;
    mcfg.max_bytes = mem_bytes;
    return std::make_unique<TieredCache>(
        std::make_unique<MemoryTier>(mcfg),
        std::make_unique<DiskTier>(dir_.string()), write_behind);
  }

  fs::path dir_;
};

/// One scheduled kernel to cache (the result must be `ok`).
core::ScheduleResult ScheduleKernel(const workload::Loop& loop) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  const core::ScheduleResult r = core::MirsHC(loop.ddg, m, core::MirsOptions{});
  EXPECT_TRUE(r.ok);
  return r;
}

CacheKey KeyOf(const workload::Loop& loop) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  return MakeCacheKey(loop.ddg, m, core::MirsOptions{});
}

TEST_F(CacheTierTest, MemoryTierHitIsBitIdentical) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult fresh = ScheduleKernel(loop);
  MemoryTier tier(MemoryTier::Config{});
  const CacheKey key = KeyOf(loop);

  EXPECT_FALSE(tier.Get(key).has_value());
  tier.Put(key, fresh);
  const auto hit = tier.Get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(io::DumpResult(fresh), io::DumpResult(*hit));

  const TierStats s = tier.tier_stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.writes, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, static_cast<long>(io::DumpResult(fresh).size()));
}

TEST_F(CacheTierTest, MemoryTierEntryBoundEvictsLru) {
  // One shard makes the LRU order deterministic and the bound exact.
  MemoryTier::Config cfg;
  cfg.max_entries = 2;
  cfg.shards = 1;
  MemoryTier tier(cfg);
  ASSERT_EQ(tier.num_shards(), 1);

  const workload::Loop a = workload::MakeDaxpy();
  const workload::Loop b = workload::MakeDot();
  const workload::Loop c = workload::MakeVadd();
  const core::ScheduleResult ra = ScheduleKernel(a);
  const core::ScheduleResult rb = ScheduleKernel(b);
  const core::ScheduleResult rc = ScheduleKernel(c);

  tier.Put(KeyOf(a), ra);
  tier.Put(KeyOf(b), rb);
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  EXPECT_TRUE(tier.Get(KeyOf(a)).has_value());
  tier.Put(KeyOf(c), rc);

  EXPECT_TRUE(tier.Get(KeyOf(a)).has_value());
  EXPECT_FALSE(tier.Get(KeyOf(b)).has_value());
  EXPECT_TRUE(tier.Get(KeyOf(c)).has_value());
  const TierStats s = tier.tier_stats();
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.evictions, 1);
}

TEST_F(CacheTierTest, MemoryTierByteBoundHolds) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult r = ScheduleKernel(loop);
  const long one = static_cast<long>(io::DumpResult(r).size());

  // Room for exactly two entries' bytes: admitting distinct keys of the
  // same result must evict, never exceed the bound.
  MemoryTier::Config cfg;
  cfg.max_entries = 64;
  cfg.max_bytes = 2 * one;
  cfg.shards = 1;
  MemoryTier tier(cfg);

  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  for (int max_ii = 1; max_ii <= 5; ++max_ii) {
    core::MirsOptions opt;
    opt.max_ii = 100 + max_ii;  // distinct keys, same payload
    tier.Put(MakeCacheKey(loop.ddg, m, opt), r);
    EXPECT_LE(tier.tier_stats().bytes, 2 * one);
  }
  const TierStats s = tier.tier_stats();
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.evictions, 3);
  EXPECT_EQ(s.bytes, 2 * one);
}

TEST_F(CacheTierTest, MemoryTierRejectsOversizeEntry) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult r = ScheduleKernel(loop);

  MemoryTier::Config cfg;
  cfg.max_entries = 4;
  cfg.max_bytes = 8;  // smaller than any serialized schedule
  cfg.shards = 1;
  MemoryTier tier(cfg);
  tier.Put(KeyOf(loop), r);

  const TierStats s = tier.tier_stats();
  EXPECT_EQ(s.oversize, 1);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.writes, 0);
  EXPECT_FALSE(tier.Get(KeyOf(loop)).has_value());
}

TEST_F(CacheTierTest, TieredColdWarmHotBitIdentity) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult fresh = ScheduleKernel(loop);
  const CacheKey key = KeyOf(loop);
  const std::string canonical = io::DumpResult(fresh);

  auto stack = MakeStack(/*mem_entries=*/16);
  EXPECT_FALSE(stack->Get(key).has_value());  // cold
  stack->Put(key, fresh);

  // Hot: served by the memory tier.
  const auto hot = stack->Get(key);
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(canonical, io::DumpResult(*hot));
  EXPECT_EQ(stack->memory().tier_stats().hits, 1);

  // Warm: a fresh stack over the same directory starts with an empty
  // memory tier; the hit comes off disk and is promoted.
  stack->Drain();
  stack = MakeStack(/*mem_entries=*/16);
  const auto warm = stack->Get(key);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(canonical, io::DumpResult(*warm));
  EXPECT_EQ(stack->disk().tier_stats().hits, 1);
  // Promotion: the next Get is memory-served.
  const auto promoted = stack->Get(key);
  ASSERT_TRUE(promoted.has_value());
  EXPECT_EQ(canonical, io::DumpResult(*promoted));
  EXPECT_EQ(stack->memory().tier_stats().hits, 1);
}

TEST_F(CacheTierTest, WriteBehindDurableAfterDrain) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult fresh = ScheduleKernel(loop);
  const CacheKey key = KeyOf(loop);

  auto stack = MakeStack(/*mem_entries=*/16, 0, /*write_behind=*/true);
  stack->Put(key, fresh);
  stack->Drain();

  const DiskTier::DirStats census = DiskTier::Scan(dir_.string());
  EXPECT_EQ(census.entries, 1);
  // The durable entry round-trips bit-identically through a fresh
  // disk-only tier (no memory in front).
  DiskTier disk(dir_.string());
  const auto hit = disk.Get(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(io::DumpResult(fresh), io::DumpResult(*hit));
}

TEST_F(CacheTierTest, SynchronousStackWritesInline) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult fresh = ScheduleKernel(loop);

  auto stack = MakeStack(/*mem_entries=*/16, 0, /*write_behind=*/false);
  stack->Put(KeyOf(loop), fresh);
  // No Drain(): the synchronous stack must already be durable.
  EXPECT_EQ(DiskTier::Scan(dir_.string()).entries, 1);
  EXPECT_EQ(stack->tier_stats().writes, 1);
}

TEST_F(CacheTierTest, StackStatsAggregateAcrossTiers) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult fresh = ScheduleKernel(loop);
  const CacheKey key = KeyOf(loop);

  auto stack = MakeStack(/*mem_entries=*/16, 0, /*write_behind=*/false);
  EXPECT_FALSE(stack->Get(key).has_value());  // miss in both tiers
  stack->Put(key, fresh);
  EXPECT_TRUE(stack->Get(key).has_value());  // memory hit

  const TierStats s = stack->tier_stats();
  EXPECT_EQ(s.hits, 1);    // from any tier
  EXPECT_EQ(s.misses, 1);  // at the durable boundary
  EXPECT_EQ(s.writes, 1);  // disk write
  EXPECT_EQ(s.entries, 1); // memory residency
  EXPECT_GT(s.bytes, 0);
}

/// A key for `loop` on the standard test machine whose exact half differs
/// by `max_ii` while the structural half (graph + machine) stays the same
/// — the shape of a what-if perturbation in the near-key index.
CacheKey KeyVariant(const workload::Loop& loop, int max_ii) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  core::MirsOptions opt;
  opt.max_ii = max_ii;
  return MakeCacheKey(loop.ddg, m, opt);
}

std::uint64_t StructuralOf(const workload::Loop& loop) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  return MakeStructuralHash(loop.ddg, m);
}

TEST_F(CacheTierTest, NearKeyServesClosestEntryAndExcludesSelf) {
  const workload::Loop loop = workload::MakeHydro();
  const core::ScheduleResult r = ScheduleKernel(loop);
  const CacheKey exact = KeyOf(loop);
  const CacheKey other = KeyVariant(loop, 777);
  const std::uint64_t structural = StructuralOf(loop);

  MemoryTier tier(MemoryTier::Config{});
  tier.Put(exact, r);
  tier.NoteStructural(structural, exact);

  // A differing exact key (same structure) gets the remembered entry.
  const auto near = tier.GetNear(structural, /*exclude=*/other);
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(io::DumpResult(r), io::DumpResult(*near));
  // Probing with the remembered key itself is not a near hit: the exact
  // path already answered (or missed) that key.
  EXPECT_FALSE(tier.GetNear(structural, /*exclude=*/exact).has_value());
  // An unknown structural hash is a near miss.
  EXPECT_FALSE(tier.GetNear(structural + 1, other).has_value());

  const TierStats s = tier.tier_stats();
  EXPECT_EQ(s.near_hits, 1);
  EXPECT_EQ(s.near_misses, 2);
}

TEST_F(CacheTierTest, NearKeyCollisionKeepsLatestExactKey) {
  const workload::Loop loop = workload::MakeDaxpy();
  const core::ScheduleResult r = ScheduleKernel(loop);
  const CacheKey k1 = KeyVariant(loop, 101);
  const CacheKey k2 = KeyVariant(loop, 102);
  const CacheKey probe = KeyVariant(loop, 103);
  const std::uint64_t structural = StructuralOf(loop);

  MemoryTier tier(MemoryTier::Config{});
  tier.Put(k1, r);
  tier.Put(k2, r);
  tier.NoteStructural(structural, k1);
  tier.NoteStructural(structural, k2);  // same structure: latest wins

  const auto remembered = tier.StructuralLookup(structural, probe);
  ASSERT_TRUE(remembered.has_value());
  EXPECT_EQ(remembered->a, k2.a);
  EXPECT_EQ(remembered->b, k2.b);
  // With the remembered key excluded, the index has nothing else to offer.
  EXPECT_FALSE(tier.StructuralLookup(structural, k2).has_value());
}

TEST_F(CacheTierTest, NearKeyStaysCoherentWithEviction) {
  // One-entry tier: the second Put evicts the first entry, but the index
  // still remembers its key. GetNear must then miss (resolving through
  // the exact path), never serve stale bytes.
  MemoryTier::Config cfg;
  cfg.max_entries = 1;
  cfg.shards = 1;
  MemoryTier tier(cfg);

  const workload::Loop a = workload::MakeDaxpy();
  const workload::Loop b = workload::MakeDot();
  const core::ScheduleResult ra = ScheduleKernel(a);
  const core::ScheduleResult rb = ScheduleKernel(b);

  tier.Put(KeyOf(a), ra);
  tier.NoteStructural(StructuralOf(a), KeyOf(a));
  tier.Put(KeyOf(b), rb);  // evicts a's entry; a's index note survives
  EXPECT_EQ(tier.tier_stats().evictions, 1);

  const auto near = tier.GetNear(StructuralOf(a), KeyVariant(a, 555));
  EXPECT_FALSE(near.has_value());
  EXPECT_EQ(tier.tier_stats().near_misses, 1);
}

TEST_F(CacheTierTest, NearKeyResolvesThroughDiskAndPromotes) {
  // Tiered stack with a one-entry memory tier: the noted entry is evicted
  // from memory but durable on disk. A near probe resolves the remembered
  // key through the whole stack — disk hit, promoted back into memory —
  // so eviction never strands the index.
  const workload::Loop a = workload::MakeDaxpy();
  const workload::Loop b = workload::MakeDot();
  const core::ScheduleResult ra = ScheduleKernel(a);
  const core::ScheduleResult rb = ScheduleKernel(b);

  auto stack = MakeStack(/*mem_entries=*/1, 0, /*write_behind=*/false);
  stack->Put(KeyOf(a), ra);
  stack->NoteStructural(StructuralOf(a), KeyOf(a));
  stack->Put(KeyOf(b), rb);  // a leaves memory, stays on disk

  const auto near = stack->GetNear(StructuralOf(a), KeyVariant(a, 555));
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(io::DumpResult(ra), io::DumpResult(*near));
  EXPECT_EQ(stack->memory().tier_stats().near_hits, 1);
  EXPECT_GE(stack->disk().tier_stats().hits, 1);
  // Promotion interplay: the next exact Get of a's key is memory-served.
  const long disk_hits = stack->disk().tier_stats().hits;
  ASSERT_TRUE(stack->Get(KeyOf(a)).has_value());
  EXPECT_EQ(stack->disk().tier_stats().hits, disk_hits);
}

TEST_F(CacheTierTest, ConcurrentHammerStaysConsistent) {
  // Many threads hammering a small, sharded tier with overlapping keys:
  // TSan gates the synchronization; the assertions gate the accounting.
  const workload::Loop loop = workload::MakeDaxpy();
  const core::ScheduleResult r = ScheduleKernel(loop);
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));

  std::vector<CacheKey> keys;
  for (int i = 0; i < 16; ++i) {
    core::MirsOptions opt;
    opt.max_ii = 50 + i;
    keys.push_back(MakeCacheKey(loop.ddg, m, opt));
  }

  MemoryTier::Config cfg;
  cfg.max_entries = 8;  // smaller than the key set: eviction under load
  cfg.shards = 4;
  MemoryTier tier(cfg);

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tier, &keys, &r, t] {
      for (int i = 0; i < kIters; ++i) {
        const CacheKey& key = keys[(t * 7 + i) % keys.size()];
        if (const auto hit = tier.Get(key); hit.has_value()) {
          // Any served result must be the bit-identical payload.
          EXPECT_EQ(hit->ii, r.ii);
        } else {
          tier.Put(key, r);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const TierStats s = tier.tier_stats();
  EXPECT_LE(s.entries, 8);
  EXPECT_EQ(s.hits + s.misses, static_cast<long>(kThreads) * kIters);
  // Residency bookkeeping survived the churn: entries matches bytes.
  EXPECT_EQ(s.bytes, s.entries * static_cast<long>(io::DumpResult(r).size()));
}

}  // namespace
}  // namespace hcrf
