// Tests for the schedule validator: each invariant violation must be
// detected (failure-injection style).
#include <gtest/gtest.h>

#include "core/mirs.h"
#include "sched/validate.h"
#include "workload/kernels.h"

namespace hcrf::sched {
namespace {

MachineConfig Mono() { return MachineConfig::WithRF(RFConfig::Parse("S128")); }

// A tiny valid schedule to perturb: load -> add -> store at II=1.
struct Fixture {
  DDG g;
  PartialSchedule s{4};
  MachineConfig m = Mono();
  NodeId ld, add, st;

  Fixture() {
    Node l;
    l.op = OpClass::kLoad;
    l.mem = MemRef{0, 0, 8};
    ld = g.AddNode(std::move(l));
    add = g.AddNode(OpClass::kFAdd);
    Node stn;
    stn.op = OpClass::kStore;
    stn.mem = MemRef{1, 0, 8};
    st = g.AddNode(std::move(stn));
    g.AddFlow(ld, add, 0);
    g.AddFlow(add, st, 0);
    s.Assign(ld, {0, 0, 0, true});
    s.Assign(add, {2, 0, 0, true});
    s.Assign(st, {6, 0, 0, true});
  }
};

TEST(Validate, AcceptsCorrectSchedule) {
  Fixture f;
  const ValidationResult r = Validate(f.g, f.s, f.m);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Validate, DetectsDependenceViolation) {
  Fixture f;
  f.s.Unassign(f.add);
  f.s.Assign(f.add, {1, 0, 0, true});  // load latency 2 not respected
  const ValidationResult r = Validate(f.g, f.s, f.m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dependence"), std::string::npos);
}

TEST(Validate, DetectsUnscheduledNode) {
  Fixture f;
  f.s.Unassign(f.st);
  const ValidationResult r = Validate(f.g, f.s, f.m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not scheduled"), std::string::npos);
}

TEST(Validate, DetectsResourceOversubscription) {
  // 5 loads in the same kernel row on 4 memory ports.
  DDG g;
  PartialSchedule s(1);
  const MachineConfig m = Mono();
  for (int i = 0; i < 5; ++i) {
    Node l;
    l.op = OpClass::kLoad;
    l.mem = MemRef{i, 0, 8};
    const NodeId v = g.AddNode(std::move(l));
    s.Assign(v, {i, 0, 0, true});  // II=1: every cycle is the same row
  }
  const ValidationResult r = Validate(g, s, m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("resource"), std::string::npos);
}

TEST(Validate, DetectsClusterOutOfRange) {
  Fixture f;
  f.s.Unassign(f.add);
  f.s.Assign(f.add, {2, 3, 0, true});  // monolithic has one cluster
  const ValidationResult r = Validate(f.g, f.s, f.m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos);
}

TEST(Validate, DetectsBankMismatchOnClustered) {
  // Producer in cluster 0, consumer in cluster 1, no Move inserted.
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("2C32/1-1"));
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, b, 0);
  PartialSchedule s(2);
  s.Assign(a, {0, 0, 0, true});
  s.Assign(b, {4, 1, 0, true});
  const ValidationResult r = Validate(g, s, m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("bank mismatch"), std::string::npos);
}

TEST(Validate, DetectsHierarchicalLoadConsumedDirectly) {
  // In a hierarchical organization a compute op cannot read a Load's value
  // without a LoadR.
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("2C32S32/3-1"));
  DDG g;
  Node l;
  l.op = OpClass::kLoad;
  l.mem = MemRef{0, 0, 8};
  const NodeId ld = g.AddNode(std::move(l));
  const NodeId add = g.AddNode(OpClass::kFAdd);
  g.AddFlow(ld, add, 0);
  PartialSchedule s(2);
  s.Assign(ld, {0, 0, 0, true});
  s.Assign(add, {4, 0, 0, true});
  const ValidationResult r = Validate(g, s, m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("bank mismatch"), std::string::npos);
}

TEST(Validate, DetectsCapacityOverflow) {
  // Two long-lived values on a 1-register monolithic RF.
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("S1"));
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  const NodeId b = g.AddNode(OpClass::kFAdd);
  const NodeId c = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, c, 0);
  g.AddFlow(b, c, 0);
  PartialSchedule s(1);
  s.Assign(a, {0, 0, 0, true});
  s.Assign(b, {1, 0, 0, true});
  s.Assign(c, {8, 0, 0, true});
  const ValidationResult r = Validate(g, s, m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("capacity"), std::string::npos);
}

TEST(Validate, MoveSrcClusterMustMatchProducer) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("2C32/1-1"));
  DDG g;
  const NodeId a = g.AddNode(OpClass::kFAdd);
  Node mv;
  mv.op = OpClass::kMove;
  mv.inserted = true;
  const NodeId mov = g.AddNode(std::move(mv));
  const NodeId b = g.AddNode(OpClass::kFAdd);
  g.AddFlow(a, mov, 0);
  g.AddFlow(mov, b, 0);
  PartialSchedule s(2);
  s.Assign(a, {0, 0, 0, true});
  s.Assign(mov, {4, 1, /*src_cluster=*/1, true});  // wrong: producer in 0
  s.Assign(b, {6, 1, 0, true});
  const ValidationResult r = Validate(g, s, m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("src_cluster"), std::string::npos);
}

TEST(Validate, EndToEndAgainstScheduler) {
  // The validator must accept everything the scheduler produces (also
  // covered by the sweeps in test_scheduler.cpp; here with overrides).
  const auto loop = workload::MakeHydro();
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  const ValidationResult r = Validate(sr.graph, sr.schedule, m, sr.overrides);
  EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
}  // namespace hcrf::sched
