// Tests of the shared worker pool behind the suite runner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "perf/thread_pool.h"

namespace hcrf::perf {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), 4, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SerialAndParallelAgree) {
  ThreadPool pool(3);
  auto run = [&](int workers) {
    std::vector<long> out(100);
    pool.ParallelFor(out.size(), workers,
                     [&](size_t i) { out[i] = static_cast<long>(i * i); });
    return std::accumulate(out.begin(), out.end(), 0L);
  };
  EXPECT_EQ(run(1), run(3));
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  // The point of the pool: many sweeps reuse the same workers. Hammer it.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, 2, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50L * 20);
}

TEST(ThreadPool, EmptyAndSingleItem) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.ParallelFor(0, 4, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 0);
  pool.ParallelFor(1, 4, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, SharedInstanceIsStable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.ParallelFor(10, a.num_workers() + 1, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(SpeculationPool, WorkerlessPoolRunsEverythingInline) {
  // 0 workers is a valid configuration: RunAndWait steals the group's own
  // queued tasks and runs them on the caller, so nothing can hang.
  SpeculationPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::atomic<int> n{0};
  TaskGroup g(pool);
  for (int i = 0; i < 16; ++i) g.Submit([&] { ++n; });
  g.RunAndWait();
  EXPECT_EQ(n.load(), 16);
}

TEST(SpeculationPool, GroupIsReusableAcrossRounds) {
  SpeculationPool pool(3);
  std::atomic<long> total{0};
  TaskGroup g(pool);
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 8; ++i) g.Submit([&] { ++total; });
    g.RunAndWait();
  }
  EXPECT_EQ(total.load(), 40L * 8);
}

TEST(SpeculationPool, NestedGroupsNeverDeadlock) {
  // More live groups than workers: every outer task opens its own inner
  // group while all workers are already busy running outer tasks. The
  // inner RunAndWait must make progress by stealing its own queued tasks.
  SpeculationPool pool(2);
  std::atomic<int> inner_runs{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 6; ++i) {
    outer.Submit([&] {
      TaskGroup inner(pool);
      for (int j = 0; j < 4; ++j) inner.Submit([&] { ++inner_runs; });
      inner.RunAndWait();
    });
  }
  outer.RunAndWait();
  EXPECT_EQ(inner_runs.load(), 6 * 4);
}

TEST(SpeculationPool, CallerHelpsUnderSaturation) {
  // Far more tasks than workers; the submitter must chew through the
  // backlog itself instead of blocking until workers get around to it.
  SpeculationPool pool(1);
  std::atomic<int> n{0};
  TaskGroup g(pool);
  for (int i = 0; i < 200; ++i) g.Submit([&] { ++n; });
  g.RunAndWait();
  EXPECT_EQ(n.load(), 200);
}

TEST(SpeculationPool, SharedInstanceIsStable) {
  SpeculationPool& a = SpeculationPool::Shared();
  SpeculationPool& b = SpeculationPool::Shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  TaskGroup g(a);
  for (int i = 0; i < 10; ++i) g.Submit([&] { ++n; });
  g.RunAndWait();
  EXPECT_EQ(n.load(), 10);
}

TEST(SpeculationPool, DestructorDrainsOutstandingTasks) {
  SpeculationPool pool(2);
  std::atomic<int> n{0};
  {
    TaskGroup g(pool);
    for (int i = 0; i < 32; ++i) g.Submit([&] { ++n; });
    // No explicit RunAndWait: ~TaskGroup must drain before `n` dies.
  }
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
}  // namespace hcrf::perf
