// Tests of the shared worker pool behind the suite runner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "perf/thread_pool.h"

namespace hcrf::perf {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), 4, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, SerialAndParallelAgree) {
  ThreadPool pool(3);
  auto run = [&](int workers) {
    std::vector<long> out(100);
    pool.ParallelFor(out.size(), workers,
                     [&](size_t i) { out[i] = static_cast<long>(i * i); });
    return std::accumulate(out.begin(), out.end(), 0L);
  };
  EXPECT_EQ(run(1), run(3));
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  // The point of the pool: many sweeps reuse the same workers. Hammer it.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(20, 2, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50L * 20);
}

TEST(ThreadPool, EmptyAndSingleItem) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  pool.ParallelFor(0, 4, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 0);
  pool.ParallelFor(1, 4, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, SharedInstanceIsStable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.ParallelFor(10, a.num_workers() + 1, [&](size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

}  // namespace
}  // namespace hcrf::perf
