// .hcl serialization: canonical round-trips (dump -> parse -> dump is
// byte-identical), faithful reconstruction including tombstones, and
// strict line-numbered rejection of malformed input.
#include <gtest/gtest.h>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "workload/kernels.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

TEST(HclLoop, KernelRoundTripsAreByteIdentical) {
  for (const workload::Loop& loop : workload::SharedKernelSuite().loops()) {
    const std::string once = io::DumpLoop(loop);
    const workload::Loop back = io::ParseLoop(once, loop.ddg.name());
    EXPECT_EQ(once, io::DumpLoop(back)) << loop.ddg.name();
    EXPECT_EQ(loop.trip, back.trip);
    EXPECT_EQ(loop.invocations, back.invocations);
    EXPECT_EQ(loop.ddg.NumNodes(), back.ddg.NumNodes());
    EXPECT_EQ(loop.ddg.NumEdges(), back.ddg.NumEdges());
    EXPECT_EQ(loop.ddg.num_invariants(), back.ddg.num_invariants());
  }
}

TEST(HclLoop, SyntheticSliceRoundTrips) {
  const workload::Suite slice =
      workload::SuiteSlice(workload::SharedSyntheticSuite(), 25);
  ASSERT_GT(slice.size(), 0u);
  for (const workload::Loop& loop : slice.loops()) {
    const std::string once = io::DumpLoop(loop);
    EXPECT_EQ(once, io::DumpLoop(io::ParseLoop(once))) << loop.ddg.name();
  }
}

TEST(HclLoop, TombstonesSurviveTheRoundTrip) {
  workload::Loop loop = workload::MakeDaxpy();
  DDG& g = loop.ddg;
  Node helper;
  helper.op = OpClass::kMove;
  helper.inserted = true;
  const NodeId a = g.AddNode(helper);
  const NodeId b = g.AddNode(helper);
  g.AddFlow(a, b);
  g.RemoveNode(a);  // tombstone in the middle of the id space

  const std::string once = io::DumpLoop(loop);
  const workload::Loop back = io::ParseLoop(once);
  EXPECT_EQ(g.NumSlots(), back.ddg.NumSlots());
  EXPECT_EQ(g.NumNodes(), back.ddg.NumNodes());
  EXPECT_FALSE(back.ddg.IsAlive(a));
  EXPECT_TRUE(back.ddg.IsAlive(b));
  EXPECT_TRUE(back.ddg.node(b).inserted);
  EXPECT_EQ(once, io::DumpLoop(back));
}

TEST(HclLoop, WhitespaceInNamesIsSanitizedToKeepDumpsParsable) {
  workload::Loop loop = workload::MakeDaxpy();
  loop.ddg.set_name("my loop\t1");
  const std::string once = io::DumpLoop(loop);
  const workload::Loop back = io::ParseLoop(once);
  EXPECT_EQ(back.ddg.name(), "my_loop_1");
  EXPECT_EQ(once, io::DumpLoop(back));
}

TEST(HclMachine, RoundTripPreservesEveryField) {
  for (const char* name : {"S128", "4C32/1-1", "1C64S64/4-2", "4C16S64/2-1"}) {
    MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(name));
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
    const std::string once = io::DumpMachine(m);
    const MachineConfig back = io::ParseMachine(once, name);
    EXPECT_EQ(m.num_fus, back.num_fus);
    EXPECT_EQ(m.num_mem_ports, back.num_mem_ports);
    EXPECT_EQ(m.rf, back.rf);
    EXPECT_EQ(m.lat, back.lat);
    EXPECT_EQ(m.clock_ns, back.clock_ns);  // bit-exact via shortest repr
    EXPECT_EQ(once, io::DumpMachine(back));
  }
}

TEST(HclMachine, AcceptsPaperNotationRfNames) {
  const MachineConfig m = io::ParseMachine(
      "hcl 1 machine\nrf name 4C16S64\nend\n", "<test>");
  EXPECT_EQ(m.rf.clusters, 4);
  EXPECT_EQ(m.rf.cluster_regs, 16);
  EXPECT_EQ(m.rf.shared_regs, 64);
}

TEST(HclOptions, RoundTrips) {
  core::MirsOptions opt;
  opt.budget_ratio = 3.25;
  opt.max_ii = 512;
  opt.iterative = false;
  opt.cluster_policy = core::ClusterPolicy::kRoundRobin;
  const std::string once = io::DumpOptions(opt);
  const core::MirsOptions back = io::ParseOptions(once);
  EXPECT_EQ(back.budget_ratio, 3.25);
  EXPECT_EQ(back.max_ii, 512);
  EXPECT_FALSE(back.iterative);
  EXPECT_EQ(back.cluster_policy, core::ClusterPolicy::kRoundRobin);
  EXPECT_EQ(once, io::DumpOptions(back));
}

TEST(HclResult, ScheduleResultRoundTripsBitIdentically) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  for (const workload::Loop& loop :
       {workload::MakeDaxpy(), workload::MakeHydro(), workload::MakeNorm2()}) {
    const core::ScheduleResult r = core::MirsHC(loop.ddg, m);
    ASSERT_TRUE(r.ok) << loop.ddg.name();
    const std::string once = io::DumpResult(r);
    const core::ScheduleResult back = io::ParseResult(once);
    EXPECT_EQ(once, io::DumpResult(back)) << loop.ddg.name();
    EXPECT_EQ(r.ii, back.ii);
    EXPECT_EQ(r.sc, back.sc);
    EXPECT_EQ(r.mii, back.mii);
    EXPECT_EQ(r.bound, back.bound);
    EXPECT_EQ(r.stats.attempts, back.stats.attempts);
    EXPECT_EQ(r.stats.budget_spent, back.stats.budget_spent);
    EXPECT_EQ(r.schedule.ii(), back.schedule.ii());
    EXPECT_EQ(r.schedule.NumScheduled(), back.schedule.NumScheduled());
    for (NodeId v = 0; v < r.graph.NumSlots(); ++v) {
      ASSERT_EQ(r.schedule.IsScheduled(v), back.schedule.IsScheduled(v));
      if (r.schedule.IsScheduled(v)) {
        EXPECT_EQ(r.schedule.CycleOf(v), back.schedule.CycleOf(v));
        EXPECT_EQ(r.schedule.ClusterOf(v), back.schedule.ClusterOf(v));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Malformed input: every rejection carries the offending line number.
// ---------------------------------------------------------------------------

int LineOfFailure(const std::string& text) {
  try {
    io::ParseLoop(text, "<test>");
  } catch (const io::HclError& e) {
    EXPECT_NE(std::string(e.what()).find("<test>:"), std::string::npos);
    return e.line();
  }
  return -1;  // no error raised
}

TEST(HclErrors, BadVersionIsRejected) {
  EXPECT_EQ(LineOfFailure("hcl 99 loop\nend\n"), 1);
}

TEST(HclErrors, BadMagicIsRejected) {
  EXPECT_EQ(LineOfFailure("xml 1 loop\nend\n"), 1);
}

TEST(HclErrors, WrongKindIsRejected) {
  EXPECT_EQ(LineOfFailure("hcl 1 machine\nend\n"), 1);
}

TEST(HclErrors, UnknownOpClassIsRejectedWithItsLine) {
  const std::string text =
      "hcl 1 loop\nslots 2\nnode 0 fadd\nnode 1 bogus\nend\n";
  EXPECT_EQ(LineOfFailure(text), 4);
  try {
    io::ParseLoop(text, "<test>");
    FAIL() << "expected HclError";
  } catch (const io::HclError& e) {
    EXPECT_NE(e.message().find("unknown op class 'bogus'"),
              std::string::npos);
  }
}

TEST(HclErrors, DanglingEdgeIsRejectedWithItsLine) {
  EXPECT_EQ(
      LineOfFailure("hcl 1 loop\nslots 2\nnode 0 fadd\nnode 1 fadd\n"
                    "edge 0 7 flow 0\nend\n"),
      5);
  // An edge to a declared-but-undefined (tombstoned) slot is dangling too.
  EXPECT_EQ(LineOfFailure("hcl 1 loop\nslots 3\nnode 0 fadd\nnode 1 fadd\n"
                          "edge 0 2 flow 0\nend\n"),
            5);
}

TEST(HclErrors, DuplicateNodeIdIsRejected) {
  EXPECT_EQ(
      LineOfFailure("hcl 1 loop\nslots 2\nnode 0 fadd\nnode 0 fmul\nend\n"),
      4);
}

TEST(HclErrors, ZeroDistanceSelfEdgeIsRejected) {
  EXPECT_EQ(LineOfFailure(
                "hcl 1 loop\nslots 1\nnode 0 fadd\nedge 0 0 flow 0\nend\n"),
            4);
}

TEST(HclErrors, UnknownDependenceKindIsRejected) {
  EXPECT_EQ(LineOfFailure("hcl 1 loop\nslots 2\nnode 0 fadd\nnode 1 fadd\n"
                          "edge 0 1 sideways 0\nend\n"),
            5);
}

TEST(HclErrors, MissingEndIsRejected) {
  EXPECT_GT(LineOfFailure("hcl 1 loop\nslots 1\nnode 0 fadd\n"), 0);
}

TEST(HclErrors, ContentAfterEndIsRejected) {
  EXPECT_EQ(LineOfFailure("hcl 1 loop\nslots 0\nend\nslots 1\n"), 4);
}

TEST(HclErrors, UnknownDirectiveIsRejected) {
  EXPECT_EQ(LineOfFailure("hcl 1 loop\nfrobnicate 3\nend\n"), 2);
}

TEST(HclErrors, NodeBeforeSlotsIsRejected) {
  EXPECT_EQ(LineOfFailure("hcl 1 loop\nnode 0 fadd\nslots 1\nend\n"), 2);
}

TEST(HclErrors, CommentsAndBlankLinesAreIgnored) {
  const workload::Loop loop = io::ParseLoop(
      "# a hand-written file\nhcl 1 loop\n\nslots 1\n# mid comment\n"
      "node 0 fadd\nend\n");
  EXPECT_EQ(loop.ddg.NumNodes(), 1);
}

// Strict whole-token numeric parsing behind the CLI's validated flags:
// std::stoi-style silent truncation ("4abc" -> 4) must be rejected.
TEST(StrictNumbers, TryParseLong) {
  EXPECT_EQ(io::TryParseLong("42"), 42);
  EXPECT_EQ(io::TryParseLong("-7"), -7);
  EXPECT_EQ(io::TryParseLong("0"), 0);
  EXPECT_FALSE(io::TryParseLong("4abc").has_value());
  EXPECT_FALSE(io::TryParseLong("abc").has_value());
  EXPECT_FALSE(io::TryParseLong("4 ").has_value());
  EXPECT_FALSE(io::TryParseLong(" 4").has_value());
  EXPECT_FALSE(io::TryParseLong("").has_value());
  EXPECT_FALSE(io::TryParseLong("4.5").has_value());
  EXPECT_FALSE(io::TryParseLong("99999999999999999999").has_value());
}

TEST(StrictNumbers, TryParseDouble) {
  EXPECT_EQ(io::TryParseDouble("1.5"), 1.5);
  EXPECT_EQ(io::TryParseDouble("-2"), -2.0);
  EXPECT_EQ(io::TryParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(io::TryParseDouble("1.5x").has_value());
  EXPECT_FALSE(io::TryParseDouble("x").has_value());
  EXPECT_FALSE(io::TryParseDouble("").has_value());
  EXPECT_FALSE(io::TryParseDouble("1.5 ").has_value());
}

}  // namespace
}  // namespace hcrf
