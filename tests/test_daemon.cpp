// Resident daemon loopback: a Server on a temp Unix socket, exercised
// through the Client. Results must be byte-identical to a direct
// RunBatch, warm resubmissions must be served by the memory tier with
// zero engine invocations, saturation must answer `busy` deterministically
// and a stop request must drain cleanly (write-behind settled, socket
// unlinked). Runs under TSan in CI.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "io/hcl.h"
#include "obs/metrics.h"
#include "service/batch.h"
#include "service/client.h"
#include "service/server.h"
#include "workload/kernels.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::path(::testing::TempDir()) /
            ("hcrf-daemon-" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    StopServer();
    fs::remove_all(base_);
  }

  std::string SocketPath() const { return (base_ / "sock").string(); }
  std::string CacheDir() const { return (base_ / "cache").string(); }

  /// Binds, then serves on a background thread until StopServer().
  void StartServer(service::ServerOptions opt) {
    opt.socket_path = SocketPath();
    server_ = std::make_unique<service::Server>(opt);
    server_->Start();
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void StopServer() {
    if (server_ == nullptr) return;
    server_->RequestStop();
    if (serve_thread_.joinable()) serve_thread_.join();
    server_.reset();
  }

  fs::path base_;
  std::unique_ptr<service::Server> server_;
  std::thread serve_thread_;
};

/// Three kernels on the paper's proposed organization — the same request
/// set for the daemon and the direct-RunBatch reference.
std::vector<service::BatchRequest> KernelRequests() {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
  std::vector<service::BatchRequest> requests;
  for (workload::Loop loop :
       {workload::MakeDaxpy(), workload::MakeDot(), workload::MakeVadd()}) {
    service::BatchRequest req;
    req.id = loop.ddg.name();
    req.loop = std::make_shared<const workload::Loop>(std::move(loop));
    req.machine = m;
    requests.push_back(std::move(req));
  }
  return requests;
}

TEST_F(DaemonTest, SubmitMatchesDirectRunBatchByteForByte) {
  service::ServerOptions opt;
  opt.service.cache_dir = CacheDir();
  opt.service.cache_mem_entries = 64;
  StartServer(opt);

  const std::vector<service::BatchRequest> requests = KernelRequests();
  const service::BatchReport direct =
      service::RunBatch(requests, service::BatchOptions{});

  service::Client client(SocketPath());
  ASSERT_TRUE(client.Ping());
  const service::SubmitReply reply = client.Submit(requests);
  ASSERT_FALSE(reply.busy);
  ASSERT_EQ(reply.items.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(reply.items[i].ok) << reply.items[i].error;
    EXPECT_EQ(io::DumpResult(direct.items[i].result),
              io::DumpResult(reply.items[i].result))
        << requests[i].id;
  }
}

TEST_F(DaemonTest, WarmResubmitIsMemoryServedWithoutEngineRuns) {
  service::ServerOptions opt;
  opt.service.cache_dir = CacheDir();
  opt.service.cache_mem_entries = 64;
  StartServer(opt);

  const std::vector<service::BatchRequest> requests = KernelRequests();
  service::Client client(SocketPath());
  const service::SubmitReply cold = client.Submit(requests);
  ASSERT_FALSE(cold.busy);
  for (const auto& item : cold.items) EXPECT_FALSE(item.cache_hit);

  const long mem_hits_before = server_->session().memory_stats().hits;
  const long engine_runs_before = obs::GetCounter("engine.runs").value();
  const service::SubmitReply warm = client.Submit(requests);
  ASSERT_FALSE(warm.busy);
  ASSERT_EQ(warm.items.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(warm.items[i].cache_hit) << requests[i].id;
    EXPECT_EQ(io::DumpResult(cold.items[i].result),
              io::DumpResult(warm.items[i].result));
  }
  EXPECT_GT(server_->session().memory_stats().hits, mem_hits_before);
  EXPECT_EQ(obs::GetCounter("engine.runs").value(), engine_runs_before);
}

TEST_F(DaemonTest, ConcurrentClientsAllServedIdentically) {
  service::ServerOptions opt;
  opt.max_inflight = 4;
  opt.service.cache_dir = CacheDir();
  opt.service.cache_mem_entries = 64;
  StartServer(opt);

  const std::vector<service::BatchRequest> requests = KernelRequests();
  const std::string socket = SocketPath();
  constexpr int kClients = 3;
  std::vector<service::SubmitReply> replies(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&socket, &requests, &replies, c] {
      service::Client client(socket);
      replies[c] = client.Submit(requests);
    });
  }
  for (std::thread& t : clients) t.join();

  for (const service::SubmitReply& reply : replies) {
    ASSERT_FALSE(reply.busy);  // max_inflight covers every client
    ASSERT_EQ(reply.items.size(), requests.size());
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    for (int c = 1; c < kClients; ++c) {
      EXPECT_EQ(io::DumpResult(replies[0].items[i].result),
                io::DumpResult(replies[c].items[i].result));
    }
  }
}

TEST_F(DaemonTest, SaturationAnswersBusy) {
  service::ServerOptions opt;
  opt.max_inflight = 1;
  opt.read_timeout_ms = 5000;  // a wedged slot frees itself eventually
  StartServer(opt);

  // Hold the single slot with a connection that never sends its request:
  // admission happens at accept time, so an idle connection occupies the
  // slot until it is closed (or times out). Unix sockets accept in FIFO
  // order, so the ping below is deterministically behind this connect.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string socket_path = SocketPath();
  ASSERT_LT(socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int stall_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(stall_fd, 0);
  ASSERT_EQ(::connect(stall_fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  service::Client client(socket_path);
  EXPECT_FALSE(client.Ping());  // saturated: busy
  EXPECT_GE(server_->bounced(), 1);

  ::close(stall_fd);  // frees the slot once the handler notices EOF
  bool served = false;
  for (int i = 0; i < 200 && !served; ++i) {
    served = client.Ping();
    if (!served) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(served);
}

TEST_F(DaemonTest, MalformedRequestGetsErrorReplyAndDaemonSurvives) {
  service::ServerOptions opt;
  StartServer(opt);

  {
    // Raw connection speaking garbage: the reply must be an error frame,
    // not a dropped daemon.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string socket_path = SocketPath();
    ASSERT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char bad[] = "hcrf 1 frobnicate\n";
    ASSERT_EQ(::write(fd, bad, sizeof(bad) - 1),
              static_cast<ssize_t>(sizeof(bad) - 1));
    char reply[64] = {};
    const ssize_t n = ::read(fd, reply, sizeof(reply) - 1);
    ASSERT_GT(n, 0);
    EXPECT_EQ(std::string(reply, 12), "hcrf 1 error");
    ::close(fd);
  }

  service::Client client(SocketPath());
  EXPECT_TRUE(client.Ping());  // the daemon lives
}

TEST_F(DaemonTest, StatsAndCacheStatsEndpoints) {
  service::ServerOptions opt;
  opt.service.cache_dir = CacheDir();
  // 64 entries over the default 16 shards leaves room for all three
  // kernels even if they hash to one shard.
  opt.service.cache_mem_entries = 64;
  StartServer(opt);

  service::Client client(SocketPath());
  client.Submit(KernelRequests());

  const std::string stats = client.Stats();
  EXPECT_NE(stats.find("service.requests"), std::string::npos);
  EXPECT_NE(stats.find("server.connections"), std::string::npos);

  const std::string cache_stats = client.CacheStats();
  EXPECT_EQ(cache_stats.rfind("hcl 1 cache-stats\n", 0), 0u);
  EXPECT_NE(cache_stats.find("\nentries 3\n"), std::string::npos) << cache_stats;
  EXPECT_NE(cache_stats.find("\nmem_hits "), std::string::npos);
}

TEST_F(DaemonTest, StopDrainsWriteBehindAndUnlinksSocket) {
  service::ServerOptions opt;
  opt.service.cache_dir = CacheDir();
  opt.service.cache_mem_entries = 64;
  StartServer(opt);

  service::Client client(SocketPath());
  const service::SubmitReply reply = client.Submit(KernelRequests());
  ASSERT_FALSE(reply.busy);
  StopServer();

  // After a clean drain the disk tier holds every scheduled entry and the
  // socket path is gone.
  EXPECT_EQ(service::DiskTier::Scan(CacheDir()).entries, 3);
  EXPECT_FALSE(fs::exists(SocketPath()));
}

}  // namespace
}  // namespace hcrf
