// Engine-driver accounting and bookkeeping invariants: the Budget_Ratio
// grant cap boundary, the force-and-eject path never leaving stale
// placements for garbage-collected nodes in a final schedule, and the
// speculative II-racing driver staying bit-identical to the serial walk
// (schedules, stats, failures) under racing, cancellation and batch use.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/mirs.h"
#include "ddg/mii.h"
#include "experiment/paper_ref.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "service/batch.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

// The RF organizations of the paper's evaluation plus the hierarchical
// clustered proposal itself — one machine per engine family and port mix.
std::vector<std::string> PaperOrgs() {
  std::vector<std::string> orgs;
  for (const auto& cfg : experiment::kPaperConfigs) orgs.push_back(cfg.name);
  orgs.push_back("4C16S64/2-1");
  return orgs;
}

// Mirrors the manifest/bench construction: paper-notation RF applied to the
// baseline resources, run through the hardware model when register counts
// are bounded.
MachineConfig OrgMachine(const std::string& rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

void ExpectStatsEq(const core::ScheduleStats& a, const core::ScheduleStats& b,
                   const std::string& what) {
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.ejections, b.ejections) << what;
  EXPECT_EQ(a.force_places, b.force_places) << what;
  EXPECT_EQ(a.restarts, b.restarts) << what;
  EXPECT_EQ(a.comm_ops, b.comm_ops) << what;
  EXPECT_EQ(a.spill_stores, b.spill_stores) << what;
  EXPECT_EQ(a.spill_loads, b.spill_loads) << what;
  EXPECT_EQ(a.storer_ops, b.storer_ops) << what;
  EXPECT_EQ(a.loadr_ops, b.loadr_ops) << what;
  EXPECT_EQ(a.move_ops, b.move_ops) << what;
  EXPECT_EQ(a.spills_inserted, b.spills_inserted) << what;
  EXPECT_EQ(a.chains_built, b.chains_built) << what;
  EXPECT_EQ(a.chains_undone, b.chains_undone) << what;
  EXPECT_DOUBLE_EQ(a.budget_spent, b.budget_spent) << what;
  EXPECT_DOUBLE_EQ(a.budget_granted, b.budget_granted) << what;
}

TEST(BudgetAccount, GrantClampsToTheCapHeadroom) {
  core::BudgetAccount b;
  b.Start(10.0, 5.0);
  EXPECT_DOUBLE_EQ(b.Grant(3.0), 3.0);  // plenty of headroom
  EXPECT_DOUBLE_EQ(b.Grant(3.0), 2.0);  // clamped: only 2 of 5 remain
  EXPECT_DOUBLE_EQ(b.Grant(3.0), 0.0);  // cap reached
  EXPECT_DOUBLE_EQ(b.granted, 5.0);     // never overshoots grant_cap
  EXPECT_DOUBLE_EQ(b.remaining, 15.0);  // initial 10 + the 5 granted
  b.Spend(1.0);
  EXPECT_DOUBLE_EQ(b.remaining, 14.0);
}

TEST(BudgetAccount, ExactCapGrantThenNothing) {
  core::BudgetAccount b;
  b.Start(0.0, 6.0);
  EXPECT_DOUBLE_EQ(b.Grant(6.0), 6.0);
  EXPECT_DOUBLE_EQ(b.Grant(0.5), 0.0);
  EXPECT_DOUBLE_EQ(b.granted, 6.0);
}

// Regression: on pure clustered organizations, force-placing a Move could
// eject a victim whose ejection cascade dissolved the very chain the Move
// belonged to (comm GC tombstones it) — and the tombstone was then placed
// anyway. The stale placement serialized as a "placement of undefined
// node" that the strict result parser (and so the schedule cache) rejects.
TEST(EngineDriver, NoPlacementsForTombstonedNodes) {
  const workload::Suite& suite = workload::SharedSyntheticSuite();
  const workload::Loop* loop = nullptr;
  for (size_t i = 0; i < suite.size(); ++i) {
    if (suite[i].ddg.name() == "synth-stream-138") loop = &suite[i];
  }
  ASSERT_NE(loop, nullptr);
  const MachineConfig m = hw::ApplyCharacterization(
      MachineConfig::WithRF(RFConfig::Parse("4C32")),
      hw::RFModelMode::kPaperTable);
  const core::ScheduleResult r = core::MirsHC(loop->ddg, m, {});
  ASSERT_TRUE(r.ok);
  for (NodeId v = 0; v < r.graph.NumSlots(); ++v) {
    EXPECT_FALSE(r.schedule.IsScheduled(v) && !r.graph.IsAlive(v))
        << "tombstoned node " << v << " still scheduled";
  }
  // The canonical dump must survive its own strict re-parse bit-exactly —
  // the property every schedule-cache hit depends on.
  const std::string dump = io::DumpResult(r);
  EXPECT_EQ(io::DumpResult(io::ParseResult(dump)), dump);
}

// ---------------------------------------------------------------------------
// Speculative II racing (PR 6)
// ---------------------------------------------------------------------------

// The tentpole guarantee: racing candidate IIs commits exactly what the
// serial escalation walk would have committed — canonical dumps (II, every
// placement, transformed graph, stats block) bit-identical on the full
// kernel corpus across all 16 paper organizations, lazy and eager waves.
TEST(Speculation, BitIdenticalToSerialAcrossKernelCorpusAndPaperOrgs) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  for (const std::string& rf : PaperOrgs()) {
    const MachineConfig m = OrgMachine(rf);
    for (size_t i = 0; i < kernels.size(); ++i) {
      const std::string what = rf + " / " + kernels[i].ddg.name();
      core::MirsOptions serial;
      core::MirsOptions spec;
      spec.speculate_k = 4;
      spec.speculate_eager = (i % 2) == 0;
      const core::ScheduleResult a = core::MirsHC(kernels[i].ddg, m, serial);
      const core::ScheduleResult b = core::MirsHC(kernels[i].ddg, m, spec);
      ASSERT_EQ(a.ok, b.ok) << what;
      ExpectStatsEq(a.stats, b.stats, what);
      if (a.ok) {
        EXPECT_EQ(io::DumpResult(a), io::DumpResult(b)) << what;
      }
      // Telemetry is the speculative driver's own, never merged into the
      // serial-equivalent stats.
      EXPECT_EQ(a.spec.raced, 0) << what;
    }
  }
}

// Failure path: when no II up to max_ii admits a schedule, the speculative
// driver must report the same failure with the same accumulated counters
// (every candidate of the serial walk attempted, none beyond).
TEST(Speculation, FailurePathStatsMatchSerial) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  int exercised = 0;
  for (size_t i = 0; i < kernels.size(); ++i) {
    const core::ScheduleResult probe = core::MirsHC(kernels[i].ddg, m, {});
    ASSERT_TRUE(probe.ok);
    if (probe.ii == probe.mii) continue;  // needs a real escalation walk
    core::MirsOptions serial;
    serial.max_ii = probe.ii - 1;  // every candidate must now fail
    core::MirsOptions spec = serial;
    spec.speculate_k = 4;
    spec.speculate_eager = true;
    const core::ScheduleResult a = core::MirsHC(kernels[i].ddg, m, serial);
    const core::ScheduleResult b = core::MirsHC(kernels[i].ddg, m, spec);
    const std::string what = kernels[i].ddg.name();
    ASSERT_FALSE(a.ok) << what;
    ASSERT_FALSE(b.ok) << what;
    EXPECT_EQ(a.mii, b.mii) << what;
    ExpectStatsEq(a.stats, b.stats, what);
    EXPECT_GT(b.spec.raced, 0) << what;
    ++exercised;
  }
  // The hierarchical proposal's kernel runs are ejection-heavy; at least
  // one loop must escalate past its MII or this test checks nothing.
  EXPECT_GT(exercised, 0);
}

// Commits a cancellation token the moment a node is ejected: the attempt
// is then mid-ejection-cascade by construction when the cancellation lands.
class CommitOnEject final : public core::EventSink {
 public:
  explicit CommitOnEject(core::SpeculationToken& token) : token_(token) {}
  void OnEvent(core::SchedEvent e, NodeId, int) override {
    if (e == core::SchedEvent::kNodeEjected) token_.Commit(0);
  }

 private:
  core::SpeculationToken& token_;
};

// Cancellation stress: abort an attempt in the middle of an ejection
// cascade, then reuse the very same context — it must behave exactly like
// a fresh one (TryII resets everything the cascade half-mutated).
TEST(Speculation, CancellationMidEjectionCascadeLeavesContextReusable) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  const core::HrmsOrderPolicy ordering;
  const sched::LatencyOverrides no_overrides;
  core::MirsOptions plain;
  int exercised = 0;
  for (size_t i = 0; i < kernels.size(); ++i) {
    const DDG& ddg = kernels[i].ddg;
    const MIIInfo mii = ComputeMII(ddg, m);
    const std::vector<NodeId> order = ordering.Order(ddg, m);
    // Reference attempt: does this loop's first II eject at all?
    core::AttemptContext fresh(ddg, m, plain, no_overrides, order);
    const core::AttemptStatus want = fresh.TryII(mii.MII());
    if (fresh.instr().stats().ejections == 0) continue;
    const std::string what = ddg.name();

    core::SpeculationToken token;
    CommitOnEject sink(token);
    core::MirsOptions with_sink;
    with_sink.event_sink = &sink;
    core::AttemptContext ctx(ddg, m, with_sink, no_overrides, order);
    // Commit(0) on the first ejection beats any real II, so the attempt
    // must abort inside the cascade instead of finishing.
    ASSERT_EQ(ctx.TryII(mii.MII(), &token), core::AttemptStatus::kCancelled)
        << what;

    // Reuse after cancellation: same status, same per-attempt counters,
    // same schedule as an untouched context.
    ctx.instr().ResetStats();
    EXPECT_EQ(ctx.TryII(mii.MII()), want) << what;
    ExpectStatsEq(ctx.instr().stats(), fresh.instr().stats(), what);
    if (want == core::AttemptStatus::kScheduled) {
      // Re-run `fresh` too: Finalize moves the graph out, so both sides
      // must come from the TryII just before their Finalize.
      fresh.instr().ResetStats();
      ASSERT_EQ(fresh.TryII(mii.MII()), core::AttemptStatus::kScheduled);
      EXPECT_EQ(io::DumpResult(ctx.Finalize(mii, mii.MII())),
                io::DumpResult(fresh.Finalize(mii, mii.MII())))
          << what;
    }
    ++exercised;
  }
  EXPECT_GT(exercised, 0);
}

// Real races cancel nondeterministically (timing decides which losing
// attempts die mid-cascade); the committed result must not care. Hammer an
// ejection-heavy case with eager racing and require one canonical answer.
TEST(Speculation, RepeatedEagerRacesAreDeterministic) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C32/1-1");
  core::MirsOptions spec;
  spec.speculate_k = 4;
  spec.speculate_eager = true;
  for (size_t i = 0; i < kernels.size() && i < 4; ++i) {
    const core::ScheduleResult serial = core::MirsHC(kernels[i].ddg, m, {});
    ASSERT_TRUE(serial.ok);
    const std::string want = io::DumpResult(serial);
    for (int round = 0; round < 6; ++round) {
      const core::ScheduleResult r = core::MirsHC(kernels[i].ddg, m, spec);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(io::DumpResult(r), want)
          << kernels[i].ddg.name() << " round " << round;
    }
  }
}

// Regression for the nested-parallelism deadlock: a 1-thread batch keeps
// the ThreadPool session serial on the caller while each request races on
// the SpeculationPool. This must complete (not deadlock) and match the
// serial batch bit for bit; a parallel batch (pool workers feeding the
// SpeculationPool from inside a session) must too.
TEST(Speculation, RacesInsideSingleThreadAndParallelBatches) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  std::vector<service::BatchRequest> reqs;
  for (size_t i = 0; i < kernels.size() && i < 6; ++i) {
    service::BatchRequest req;
    req.loop = std::make_shared<workload::Loop>(kernels[i]);
    req.id = kernels[i].ddg.name();
    req.machine = m;
    reqs.push_back(std::move(req));
  }
  service::BatchOptions serial_opt;
  serial_opt.threads = 1;
  service::BatchOptions spec1_opt = serial_opt;
  spec1_opt.speculate_k = 4;
  spec1_opt.speculate_eager = true;
  service::BatchOptions spec2_opt = spec1_opt;
  spec2_opt.threads = 2;

  const service::BatchReport a = service::RunBatch(reqs, serial_opt);
  const service::BatchReport b = service::RunBatch(reqs, spec1_opt);
  const service::BatchReport c = service::RunBatch(reqs, spec2_opt);
  ASSERT_EQ(a.items.size(), reqs.size());
  ASSERT_EQ(b.items.size(), reqs.size());
  ASSERT_EQ(c.items.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(a.items[i].ok) << reqs[i].id;
    ASSERT_TRUE(b.items[i].ok) << reqs[i].id;
    ASSERT_TRUE(c.items[i].ok) << reqs[i].id;
    const std::string want = io::DumpResult(a.items[i].result);
    EXPECT_EQ(io::DumpResult(b.items[i].result), want) << reqs[i].id;
    EXPECT_EQ(io::DumpResult(c.items[i].result), want) << reqs[i].id;
  }
}

// Regression for the PR 6 restriction that an attached event sink forced
// the serial path: racing attempts now capture their callbacks privately
// and the driver replays them in escalation order after each wave, so the
// sink observes the exact serial sequence — same events, same order, same
// (node, ii) payloads, on a single thread — while racing still happens.
TEST(Speculation, EventSinkComposesWithRacing) {
  class RecordingSink final : public core::EventSink {
   public:
    void OnEvent(core::SchedEvent e, NodeId n, int ii) override {
      events.push_back({e, n, ii});
    }
    std::vector<std::tuple<core::SchedEvent, NodeId, int>> events;
  };
  const workload::Suite& kernels = workload::SharedKernelSuite();
  // Ejection-heavy organization so the walk escalates (several waves) and
  // the replayed stream includes restarts, not just one attempt's events.
  const MachineConfig m = OrgMachine("4C32/1-1");
  int raced_total = 0;
  for (size_t i = 0; i < kernels.size() && i < 6; ++i) {
    const std::string what = kernels[i].ddg.name();
    RecordingSink serial_sink;
    core::MirsOptions serial;
    serial.event_sink = &serial_sink;
    RecordingSink spec_sink;
    core::MirsOptions spec;
    spec.speculate_k = 4;
    spec.speculate_eager = true;
    spec.event_sink = &spec_sink;
    const core::ScheduleResult a = core::MirsHC(kernels[i].ddg, m, serial);
    const core::ScheduleResult b = core::MirsHC(kernels[i].ddg, m, spec);
    ASSERT_TRUE(a.ok) << what;
    ASSERT_TRUE(b.ok) << what;
    EXPECT_EQ(io::DumpResult(b), io::DumpResult(a)) << what;
    EXPECT_GT(serial_sink.events.size(), 0u) << what;
    EXPECT_EQ(spec_sink.events, serial_sink.events) << what;
    raced_total += b.spec.raced;
  }
  // The point of the regression test: the sink no longer disables racing.
  EXPECT_GT(raced_total, 0);
}

}  // namespace
}  // namespace hcrf
