// Engine-driver accounting and bookkeeping invariants: the Budget_Ratio
// grant cap boundary, and the force-and-eject path never leaving stale
// placements for garbage-collected nodes in a final schedule.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

TEST(BudgetAccount, GrantClampsToTheCapHeadroom) {
  core::BudgetAccount b;
  b.Start(10.0, 5.0);
  EXPECT_DOUBLE_EQ(b.Grant(3.0), 3.0);  // plenty of headroom
  EXPECT_DOUBLE_EQ(b.Grant(3.0), 2.0);  // clamped: only 2 of 5 remain
  EXPECT_DOUBLE_EQ(b.Grant(3.0), 0.0);  // cap reached
  EXPECT_DOUBLE_EQ(b.granted, 5.0);     // never overshoots grant_cap
  EXPECT_DOUBLE_EQ(b.remaining, 15.0);  // initial 10 + the 5 granted
  b.Spend(1.0);
  EXPECT_DOUBLE_EQ(b.remaining, 14.0);
}

TEST(BudgetAccount, ExactCapGrantThenNothing) {
  core::BudgetAccount b;
  b.Start(0.0, 6.0);
  EXPECT_DOUBLE_EQ(b.Grant(6.0), 6.0);
  EXPECT_DOUBLE_EQ(b.Grant(0.5), 0.0);
  EXPECT_DOUBLE_EQ(b.granted, 6.0);
}

// Regression: on pure clustered organizations, force-placing a Move could
// eject a victim whose ejection cascade dissolved the very chain the Move
// belonged to (comm GC tombstones it) — and the tombstone was then placed
// anyway. The stale placement serialized as a "placement of undefined
// node" that the strict result parser (and so the schedule cache) rejects.
TEST(EngineDriver, NoPlacementsForTombstonedNodes) {
  const workload::Suite& suite = workload::SharedSyntheticSuite();
  const workload::Loop* loop = nullptr;
  for (size_t i = 0; i < suite.size(); ++i) {
    if (suite[i].ddg.name() == "synth-stream-138") loop = &suite[i];
  }
  ASSERT_NE(loop, nullptr);
  const MachineConfig m = hw::ApplyCharacterization(
      MachineConfig::WithRF(RFConfig::Parse("4C32")),
      hw::RFModelMode::kPaperTable);
  const core::ScheduleResult r = core::MirsHC(loop->ddg, m, {});
  ASSERT_TRUE(r.ok);
  for (NodeId v = 0; v < r.graph.NumSlots(); ++v) {
    EXPECT_FALSE(r.schedule.IsScheduled(v) && !r.graph.IsAlive(v))
        << "tombstoned node " << v << " still scheduled";
  }
  // The canonical dump must survive its own strict re-parse bit-exactly —
  // the property every schedule-cache hit depends on.
  const std::string dump = io::DumpResult(r);
  EXPECT_EQ(io::DumpResult(io::ParseResult(dump)), dump);
}

}  // namespace
}  // namespace hcrf
