// Unit tests for the modulo reservation table.
#include <gtest/gtest.h>

#include "sched/mrt.h"

namespace hcrf::sched {
namespace {

MachineConfig Mono() {
  return MachineConfig::WithRF(RFConfig::Parse("S128"));
}
MachineConfig Clustered() {
  return MachineConfig::WithRF(RFConfig::Parse("4C32/1-1"));
}
MachineConfig Hier() {
  return MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
}

TEST(MRT, Capacities) {
  ModuloReservationTable mono(Mono(), 4);
  EXPECT_EQ(mono.Capacity(ResKind::kFU, 0), 8);
  EXPECT_EQ(mono.Capacity(ResKind::kMemPort, 0), 4);
  EXPECT_EQ(mono.Capacity(ResKind::kLoadRPort, 0), 0);
  EXPECT_EQ(mono.Capacity(ResKind::kBus, 0), 0);

  ModuloReservationTable cl(Clustered(), 4);
  EXPECT_EQ(cl.Capacity(ResKind::kFU, 0), 2);
  EXPECT_EQ(cl.Capacity(ResKind::kMemPort, 3), 1);
  EXPECT_EQ(cl.Capacity(ResKind::kBusInPort, 0), 1);
  EXPECT_EQ(cl.Capacity(ResKind::kBus, 0), 2);  // nb = x/2
  EXPECT_EQ(cl.Capacity(ResKind::kLoadRPort, 0), 0);

  ModuloReservationTable hc(Hier(), 4);
  EXPECT_EQ(hc.Capacity(ResKind::kFU, 0), 2);
  EXPECT_EQ(hc.Capacity(ResKind::kMemPort, 0), 4);  // global, shared bank
  EXPECT_EQ(hc.Capacity(ResKind::kLoadRPort, 2), 2);
  EXPECT_EQ(hc.Capacity(ResKind::kStoreRPort, 2), 1);
  EXPECT_EQ(hc.Capacity(ResKind::kBus, 0), 0);
}

TEST(MRT, PlaceAndConflict) {
  const MachineConfig m = Clustered();
  ModuloReservationTable mrt(m, 2);
  const auto fu = ResourceNeeds(OpClass::kFAdd, 0, 0, m);
  // 2 FUs per cluster at II=2 -> 4 slots per cluster, 2 per row.
  EXPECT_TRUE(mrt.CanPlace(fu, 0));
  mrt.Place(1, fu, 0);
  mrt.Place(2, fu, 0);
  EXPECT_FALSE(mrt.CanPlace(fu, 0));
  EXPECT_TRUE(mrt.CanPlace(fu, 1));
  // Modulo wrap: cycle 2 is row 0 again.
  EXPECT_FALSE(mrt.CanPlace(fu, 2));
  std::vector<NodeId> conflicts;
  mrt.ConflictingNodes(fu, 0, conflicts);
  EXPECT_EQ(conflicts.size(), 2u);
  mrt.Remove(1);
  EXPECT_TRUE(mrt.CanPlace(fu, 0));
  EXPECT_TRUE(mrt.IsPlaced(2));
  EXPECT_FALSE(mrt.IsPlaced(1));
}

TEST(MRT, UnpipelinedOccupiesFullLatency) {
  MachineConfig m = Mono();
  m.num_fus = 1;
  ModuloReservationTable mrt(m, 4);
  const auto div = ResourceNeeds(OpClass::kFDiv, 0, 0, m);
  ASSERT_EQ(div.count, 1);
  EXPECT_EQ(div.uses[0].duration, 17);
  // 17-cycle occupancy cannot fit a 4-cycle kernel on one FU.
  EXPECT_FALSE(mrt.CanPlace(div, 0));

  ModuloReservationTable big(m, 17);
  EXPECT_TRUE(big.CanPlace(div, 0));
  big.Place(7, div, 0);
  // Fully occupied: any add conflicts at any row.
  const auto add = ResourceNeeds(OpClass::kFAdd, 0, 0, m);
  for (int t = 0; t < 17; ++t) EXPECT_FALSE(big.CanPlace(add, t));
}

TEST(MRT, MoveUsesBusAndPorts) {
  const MachineConfig m = Clustered();
  ModuloReservationTable mrt(m, 1);
  const auto mv01 = ResourceNeeds(OpClass::kMove, 1, 0, m);  // 0 -> 1
  const auto mv02 = ResourceNeeds(OpClass::kMove, 2, 0, m);  // 0 -> 2
  const auto mv12 = ResourceNeeds(OpClass::kMove, 2, 1, m);  // 1 -> 2
  // sp=1 output port on cluster 0: a second move out of 0 cannot issue the
  // same cycle even though a bus is free.
  EXPECT_TRUE(mrt.CanPlace(mv01, 0));
  mrt.Place(1, mv01, 0);
  EXPECT_FALSE(mrt.CanPlace(mv02, 0));
  // From another cluster everything is free (cluster 1's out port,
  // cluster 2's in port, the second bus), so 1 -> 2 can issue.
  EXPECT_TRUE(mrt.CanPlace(mv12, 0));
}

TEST(MRT, MoveBusSaturation) {
  const MachineConfig m = Clustered();
  ModuloReservationTable mrt(m, 1);
  mrt.Place(1, ResourceNeeds(OpClass::kMove, 1, 0, m), 0);  // 0 -> 1
  const auto mv32 = ResourceNeeds(OpClass::kMove, 2, 3, m);  // 3 -> 2
  EXPECT_TRUE(mrt.CanPlace(mv32, 0));
  mrt.Place(2, mv32, 0);
  // Both buses taken now.
  const auto mv13 = ResourceNeeds(OpClass::kMove, 3, 1, m);  // 1 -> 3
  EXPECT_FALSE(mrt.CanPlace(mv13, 0));
  std::vector<NodeId> conflicts;
  mrt.ConflictingNodes(mv13, 0, conflicts);
  EXPECT_EQ(conflicts.size(), 2u);
}

TEST(MRT, NegativeCyclesWrapCorrectly) {
  const MachineConfig m = Mono();
  ModuloReservationTable mrt(m, 3);
  const auto ld = ResourceNeeds(OpClass::kLoad, 0, 0, m);
  mrt.Place(1, ld, -1);  // row 2
  EXPECT_EQ(mrt.Usage(ResKind::kMemPort, 0, 2), 1);
  mrt.Remove(1);
  EXPECT_EQ(mrt.Usage(ResKind::kMemPort, 0, 2), 0);
}

TEST(MRT, RejectsBadII) {
  EXPECT_THROW(ModuloReservationTable(Mono(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace hcrf::sched
