// Unit tests for the modulo reservation table.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sched/mrt.h"

namespace hcrf::sched {
namespace {

MachineConfig Mono() {
  return MachineConfig::WithRF(RFConfig::Parse("S128"));
}
MachineConfig Clustered() {
  return MachineConfig::WithRF(RFConfig::Parse("4C32/1-1"));
}
MachineConfig Hier() {
  return MachineConfig::WithRF(RFConfig::Parse("4C16S64/2-1"));
}

TEST(MRT, Capacities) {
  ModuloReservationTable mono(Mono(), 4);
  EXPECT_EQ(mono.Capacity(ResKind::kFU, 0), 8);
  EXPECT_EQ(mono.Capacity(ResKind::kMemPort, 0), 4);
  EXPECT_EQ(mono.Capacity(ResKind::kLoadRPort, 0), 0);
  EXPECT_EQ(mono.Capacity(ResKind::kBus, 0), 0);

  ModuloReservationTable cl(Clustered(), 4);
  EXPECT_EQ(cl.Capacity(ResKind::kFU, 0), 2);
  EXPECT_EQ(cl.Capacity(ResKind::kMemPort, 3), 1);
  EXPECT_EQ(cl.Capacity(ResKind::kBusInPort, 0), 1);
  EXPECT_EQ(cl.Capacity(ResKind::kBus, 0), 2);  // nb = x/2
  EXPECT_EQ(cl.Capacity(ResKind::kLoadRPort, 0), 0);

  ModuloReservationTable hc(Hier(), 4);
  EXPECT_EQ(hc.Capacity(ResKind::kFU, 0), 2);
  EXPECT_EQ(hc.Capacity(ResKind::kMemPort, 0), 4);  // global, shared bank
  EXPECT_EQ(hc.Capacity(ResKind::kLoadRPort, 2), 2);
  EXPECT_EQ(hc.Capacity(ResKind::kStoreRPort, 2), 1);
  EXPECT_EQ(hc.Capacity(ResKind::kBus, 0), 0);
}

TEST(MRT, PlaceAndConflict) {
  const MachineConfig m = Clustered();
  ModuloReservationTable mrt(m, 2);
  const auto fu = ResourceNeeds(OpClass::kFAdd, 0, 0, m);
  // 2 FUs per cluster at II=2 -> 4 slots per cluster, 2 per row.
  EXPECT_TRUE(mrt.CanPlace(fu, 0));
  mrt.Place(1, fu, 0);
  mrt.Place(2, fu, 0);
  EXPECT_FALSE(mrt.CanPlace(fu, 0));
  EXPECT_TRUE(mrt.CanPlace(fu, 1));
  // Modulo wrap: cycle 2 is row 0 again.
  EXPECT_FALSE(mrt.CanPlace(fu, 2));
  std::vector<NodeId> conflicts;
  mrt.ConflictingNodes(fu, 0, conflicts);
  EXPECT_EQ(conflicts.size(), 2u);
  mrt.Remove(1);
  EXPECT_TRUE(mrt.CanPlace(fu, 0));
  EXPECT_TRUE(mrt.IsPlaced(2));
  EXPECT_FALSE(mrt.IsPlaced(1));
}

TEST(MRT, UnpipelinedOccupiesFullLatency) {
  MachineConfig m = Mono();
  m.num_fus = 1;
  ModuloReservationTable mrt(m, 4);
  const auto div = ResourceNeeds(OpClass::kFDiv, 0, 0, m);
  ASSERT_EQ(div.count, 1);
  EXPECT_EQ(div.uses[0].duration, 17);
  // 17-cycle occupancy cannot fit a 4-cycle kernel on one FU.
  EXPECT_FALSE(mrt.CanPlace(div, 0));

  ModuloReservationTable big(m, 17);
  EXPECT_TRUE(big.CanPlace(div, 0));
  big.Place(7, div, 0);
  // Fully occupied: any add conflicts at any row.
  const auto add = ResourceNeeds(OpClass::kFAdd, 0, 0, m);
  for (int t = 0; t < 17; ++t) EXPECT_FALSE(big.CanPlace(add, t));
}

TEST(MRT, MoveUsesBusAndPorts) {
  const MachineConfig m = Clustered();
  ModuloReservationTable mrt(m, 1);
  const auto mv01 = ResourceNeeds(OpClass::kMove, 1, 0, m);  // 0 -> 1
  const auto mv02 = ResourceNeeds(OpClass::kMove, 2, 0, m);  // 0 -> 2
  const auto mv12 = ResourceNeeds(OpClass::kMove, 2, 1, m);  // 1 -> 2
  // sp=1 output port on cluster 0: a second move out of 0 cannot issue the
  // same cycle even though a bus is free.
  EXPECT_TRUE(mrt.CanPlace(mv01, 0));
  mrt.Place(1, mv01, 0);
  EXPECT_FALSE(mrt.CanPlace(mv02, 0));
  // From another cluster everything is free (cluster 1's out port,
  // cluster 2's in port, the second bus), so 1 -> 2 can issue.
  EXPECT_TRUE(mrt.CanPlace(mv12, 0));
}

TEST(MRT, MoveBusSaturation) {
  const MachineConfig m = Clustered();
  ModuloReservationTable mrt(m, 1);
  mrt.Place(1, ResourceNeeds(OpClass::kMove, 1, 0, m), 0);  // 0 -> 1
  const auto mv32 = ResourceNeeds(OpClass::kMove, 2, 3, m);  // 3 -> 2
  EXPECT_TRUE(mrt.CanPlace(mv32, 0));
  mrt.Place(2, mv32, 0);
  // Both buses taken now.
  const auto mv13 = ResourceNeeds(OpClass::kMove, 3, 1, m);  // 1 -> 3
  EXPECT_FALSE(mrt.CanPlace(mv13, 0));
  std::vector<NodeId> conflicts;
  mrt.ConflictingNodes(mv13, 0, conflicts);
  EXPECT_EQ(conflicts.size(), 2u);
}

TEST(MRT, NegativeCyclesWrapCorrectly) {
  const MachineConfig m = Mono();
  ModuloReservationTable mrt(m, 3);
  const auto ld = ResourceNeeds(OpClass::kLoad, 0, 0, m);
  mrt.Place(1, ld, -1);  // row 2
  EXPECT_EQ(mrt.Usage(ResKind::kMemPort, 0, 2), 1);
  mrt.Remove(1);
  EXPECT_EQ(mrt.Usage(ResKind::kMemPort, 0, 2), 0);
}

TEST(MRT, RejectsBadII) {
  EXPECT_THROW(ModuloReservationTable(Mono(), 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FindFirstSlotUp/Down vs the CanPlace-by-CanPlace definition
// ---------------------------------------------------------------------------

// The pre-optimization definition of the window scans. The blocked
// row-scan rewrite must be indistinguishable from this on every input.
int RefUp(const ModuloReservationTable& mrt, std::span<const ResUse> needs,
          int lo, int hi) {
  for (int t = lo; t <= hi; ++t) {
    if (mrt.CanPlace(needs, t)) return t;
  }
  return ModuloReservationTable::kNoSlot;
}

int RefDown(const ModuloReservationTable& mrt, std::span<const ResUse> needs,
            int hi, int lo) {
  for (int t = hi; t >= lo; --t) {
    if (mrt.CanPlace(needs, t)) return t;
  }
  return ModuloReservationTable::kNoSlot;
}

// Random resource needs legal on `m` (Moves only exist on clustered buses,
// LoadR/StoreR only on hierarchical organizations, FDiv exercises the
// unpipelined scalar fallback).
ResUseList RandomNeeds(std::mt19937& rng, const MachineConfig& m) {
  const int clusters = m.rf.clusters > 0 ? m.rf.clusters : 1;
  std::vector<OpClass> ops = {OpClass::kFAdd, OpClass::kFMul, OpClass::kLoad,
                              OpClass::kStore, OpClass::kFDiv};
  if (m.rf.clusters > 1 && m.rf.shared_regs == 0) ops.push_back(OpClass::kMove);
  if (m.rf.clusters > 1 && m.rf.shared_regs > 0) {
    ops.push_back(OpClass::kLoadR);
    ops.push_back(OpClass::kStoreR);
  }
  const OpClass op = ops[rng() % ops.size()];
  const int cluster = static_cast<int>(rng() % clusters);
  int src = static_cast<int>(rng() % clusters);
  if (op == OpClass::kMove && src == cluster) src = (src + 1) % clusters;
  return ResourceNeeds(op, cluster, src, m);
}

TEST(MRT, RandomizedScanEquivalence) {
  std::mt19937 rng(20260808);
  const MachineConfig machines[] = {Mono(), Clustered(), Hier()};
  const int iis[] = {1, 2, 3, 5, 7, 11, 17};
  for (int trial = 0; trial < 240; ++trial) {
    const MachineConfig& m = machines[trial % 3];
    const int ii = iis[rng() % (sizeof(iis) / sizeof(iis[0]))];
    ModuloReservationTable mrt(m, ii);
    // Fill to a random occupancy level (0 = empty .. heavy, often up to
    // full saturation of some resource rows).
    const int fills = static_cast<int>(rng() % 64);
    NodeId next = 1;
    for (int f = 0; f < fills; ++f) {
      const ResUseList needs = RandomNeeds(rng, m);
      const int cycle = static_cast<int>(rng() % (4 * ii + 1)) - 2 * ii;
      if (mrt.CanPlace(needs, cycle)) mrt.Place(next++, needs, cycle);
    }
    for (int probe = 0; probe < 10; ++probe) {
      ResUseList needs;
      if (rng() % 8 != 0) needs = RandomNeeds(rng, m);  // 1-in-8: empty
      // Windows straddle negative cycles, wrap several kernels, collapse
      // to one cycle, or invert (hi < lo must find nothing).
      const int lo = static_cast<int>(rng() % (4 * ii + 7)) - 2 * ii - 3;
      const int width = static_cast<int>(rng() % (3 * ii + 5)) - 2;
      const int hi = lo + width;
      EXPECT_EQ(mrt.FindFirstSlotUp(needs, lo, hi), RefUp(mrt, needs, lo, hi))
          << "up ii=" << ii << " lo=" << lo << " hi=" << hi;
      EXPECT_EQ(mrt.FindFirstSlotDown(needs, hi, lo),
                RefDown(mrt, needs, hi, lo))
          << "down ii=" << ii << " lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(MRT, ScansOnFullySaturatedTable) {
  // Saturate every FU and memory-port row, then scan wide windows: both
  // directions must report kNoSlot for FU/memory needs at any range shape.
  const MachineConfig m = Mono();
  for (const int ii : {1, 3, 8}) {
    ModuloReservationTable mrt(m, ii);
    NodeId next = 1;
    const auto fu = ResourceNeeds(OpClass::kFAdd, 0, 0, m);
    const auto ld = ResourceNeeds(OpClass::kLoad, 0, 0, m);
    for (int t = 0; t < ii; ++t) {
      while (mrt.CanPlace(fu, t)) mrt.Place(next++, fu, t);
      while (mrt.CanPlace(ld, t)) mrt.Place(next++, ld, t);
    }
    for (const auto& needs : {fu, ld}) {
      EXPECT_EQ(mrt.FindFirstSlotUp(needs, 0, 10 * ii),
                ModuloReservationTable::kNoSlot);
      EXPECT_EQ(mrt.FindFirstSlotDown(needs, 10 * ii, -10 * ii),
                ModuloReservationTable::kNoSlot);
      EXPECT_EQ(mrt.FindFirstSlotUp(needs, -3, -3),
                ModuloReservationTable::kNoSlot);
    }
    // Empty needs still fit everywhere.
    EXPECT_EQ(mrt.FindFirstSlotUp(ResUseList{}, -5, 5), -5);
    EXPECT_EQ(mrt.FindFirstSlotDown(ResUseList{}, 5, -5), 5);
  }
}

TEST(MRT, ScanWindowClampMatchesPeriodicity) {
  // A window far wider than II: only the first II candidates can differ,
  // and a hole at exactly one row must be found at its first occurrence in
  // scan order from either direction.
  const MachineConfig m = Clustered();
  const int ii = 5;
  ModuloReservationTable mrt(m, ii);
  const auto fu = ResourceNeeds(OpClass::kFAdd, 2, 0, m);
  NodeId next = 1;
  for (int t = 0; t < ii; ++t) {
    if (t == 3) continue;  // leave row 3 open
    while (mrt.CanPlace(fu, t)) mrt.Place(next++, fu, t);
  }
  EXPECT_EQ(mrt.FindFirstSlotUp(fu, 0, 100), 3);
  EXPECT_EQ(mrt.FindFirstSlotUp(fu, 4, 100), 8);    // next wrap of row 3
  EXPECT_EQ(mrt.FindFirstSlotUp(fu, -9, 100), -7);  // -7 mod 5 == 3
  EXPECT_EQ(mrt.FindFirstSlotDown(fu, 100, 0), 98);
  EXPECT_EQ(mrt.FindFirstSlotDown(fu, 2, -100), -2);
  // The clamp must not skip candidates of a window shorter than II.
  EXPECT_EQ(mrt.FindFirstSlotUp(fu, 0, 2), ModuloReservationTable::kNoSlot);
  EXPECT_EQ(mrt.FindFirstSlotDown(fu, 2, 0), ModuloReservationTable::kNoSlot);
}

}  // namespace
}  // namespace hcrf::sched
