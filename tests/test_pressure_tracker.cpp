// Differential tests for the incremental pressure tracker: randomized
// place / eject / spill-style mutation sequences replayed against
// ComputePressure ground truth at every step, across the pure-clustered,
// hierarchical (clustered and not) and monolithic organization families —
// plus engine-level A/B runs asserting the incremental and reference
// engines produce bit-identical schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/mirs.h"
#include "core/sched_state.h"
#include "io/hcl.h"
#include "machine/rf_config.h"
#include "sched/lifetime.h"
#include "sched/pressure_tracker.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

using core::SchedState;
using sched::ComputePressure;
using sched::kSharedBank;
using sched::PressureReport;

DDG RandomGraph(std::mt19937& rng, int nodes, int invariants) {
  DDG g("random");
  std::uniform_int_distribution<int> op_pick(0, 4);
  for (int i = 0; i < nodes; ++i) {
    switch (op_pick(rng)) {
      case 0: g.AddNode(OpClass::kFAdd); break;
      case 1: g.AddNode(OpClass::kFMul); break;
      case 2: g.AddNode(OpClass::kFDiv); break;
      case 3: g.AddNode(OpClass::kLoad); break;
      default: g.AddNode(OpClass::kStore); break;
    }
  }
  for (int i = 0; i < invariants; ++i) g.AddInvariant();
  std::uniform_int_distribution<int> node_pick(0, nodes - 1);
  std::uniform_int_distribution<int> dist_pick(0, 3);
  for (int e = 0; e < 2 * nodes; ++e) {
    const NodeId src = node_pick(rng);
    const NodeId dst = node_pick(rng);
    if (!DefinesValue(g.node(src).op)) continue;
    if (src == dst) {
      g.AddFlow(src, dst, 1 + dist_pick(rng));  // recurrence self-read
    } else {
      g.AddFlow(src, dst, dist_pick(rng));
    }
  }
  if (invariants > 0) {
    std::uniform_int_distribution<int> inv_pick(0, invariants - 1);
    for (int i = 0; i < nodes; ++i) {
      if (node_pick(rng) % 3 == 0) {
        g.node(i).invariant_uses.push_back(inv_pick(rng));
      }
    }
  }
  return g;
}

/// Tracker state must equal the ground truth: every bank's MaxLive and the
/// full ValueLifetime list.
void ExpectMatchesGroundTruth(SchedState& st, const MachineConfig& m,
                              int step) {
  const PressureReport truth =
      ComputePressure(st.g, *st.sched, m, st.overrides);
  const PressureReport got = st.pressure.Report();
  ASSERT_EQ(got.shared_maxlive, truth.shared_maxlive) << "step " << step;
  ASSERT_EQ(got.cluster_maxlive, truth.cluster_maxlive) << "step " << step;
  ASSERT_EQ(st.pressure.MaxLive(kSharedBank), truth.shared_maxlive)
      << "step " << step;
  for (int c = 0; c < m.rf.clusters; ++c) {
    ASSERT_EQ(st.pressure.MaxLive(c),
              truth.cluster_maxlive[static_cast<size_t>(c)])
        << "step " << step << " cluster " << c;
  }
  ASSERT_EQ(got.values.size(), truth.values.size()) << "step " << step;
  for (size_t i = 0; i < got.values.size(); ++i) {
    ASSERT_EQ(got.values[i].def, truth.values[i].def) << "step " << step;
    ASSERT_EQ(got.values[i].bank, truth.values[i].bank) << "step " << step;
    ASSERT_EQ(got.values[i].start, truth.values[i].start) << "step " << step;
    ASSERT_EQ(got.values[i].end, truth.values[i].end) << "step " << step;
    ASSERT_EQ(got.values[i].uses, truth.values[i].uses) << "step " << step;
  }
}

void RunDifferential(const std::string& rf_name, unsigned seed) {
  SCOPED_TRACE(rf_name);
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  std::mt19937 rng(seed);
  const DDG original = RandomGraph(rng, 24, 3);

  // Binding-prefetch style overrides for a few producers: the hierarchical
  // shared-bank deposit time honours them.
  sched::LatencyOverrides overrides;
  overrides.producer_latency.assign(24, 0);
  overrides.producer_latency[3] = 9;
  overrides.producer_latency[7] = 5;

  SchedState st(m);
  const int ii = 5;
  st.Reset(original, overrides, ii);
  ASSERT_TRUE(st.pressure.attached());

  const int clusters = std::max(1, m.rf.clusters);
  std::uniform_int_distribution<int> cycle_pick(-9, 30);
  std::uniform_int_distribution<int> cluster_pick(0, clusters - 1);
  std::uniform_int_distribution<int> op_pick(0, 99);
  std::vector<NodeId> inserted;

  for (int step = 0; step < 400; ++step) {
    std::uniform_int_distribution<int> node_pick(0, st.g.NumSlots() - 1);
    const NodeId v = node_pick(rng);
    const int action = op_pick(rng);
    if (!st.g.IsAlive(v)) continue;
    if (action < 45) {
      // Place (or re-place after an eject).
      if (!st.sched->IsScheduled(v)) {
        st.Assign(v, {cycle_pick(rng), cluster_pick(rng), 0, true});
      }
    } else if (action < 70) {
      st.Unplace(v);
    } else if (action < 78 && DefinesValue(st.g.node(v).op)) {
      // Spill-style reroute: insert a spill copy fed by v, steal one of
      // v's consumer edges for it.
      Node copy;
      copy.op = m.rf.IsHierarchical() ? OpClass::kStoreR : OpClass::kLoad;
      copy.inserted = true;
      copy.spill = true;
      const NodeId s = st.g.AddNode(std::move(copy));
      st.GrowTo(s);
      inserted.push_back(s);
      st.g.AddFlow(v, s, 0);
      const auto consumers = st.g.FlowConsumers(v);
      for (const Edge& e : consumers) {
        if (e.dst != s && e.src != e.dst) {
          ASSERT_TRUE(st.g.RemoveEdge(e.src, e.dst, e.kind, e.distance));
          st.g.AddFlow(s, e.dst, e.distance);
          break;
        }
      }
    } else if (action < 86 && !inserted.empty()) {
      // Comm-undo style: tombstone an inserted node.
      const NodeId dead = inserted.back();
      inserted.pop_back();
      if (st.g.IsAlive(dead)) {
        st.Unplace(dead);
        st.MarkScheduled(dead);
        st.g.RemoveNode(dead);
      }
    } else if (action < 94) {
      // Spill-engine invariant un-pinning: edit invariant_uses in place.
      auto& uses = st.g.node(v).invariant_uses;
      if (!uses.empty()) {
        uses.erase(uses.begin());
        st.pressure.ResyncInvariantReads(v);
      }
    } else {
      // Plain edge rewire of a random flow edge.
      const auto outs = st.g.FlowConsumers(v);
      if (!outs.empty() && outs.front().src != outs.front().dst) {
        const Edge e = outs.front();
        ASSERT_TRUE(st.g.RemoveEdge(e.src, e.dst, e.kind, e.distance));
        st.g.AddFlow(e.src, e.dst, e.distance + 1);
      }
    }
    ExpectMatchesGroundTruth(st, m, step);
  }
  // The HCRF_CHECK flavour of the same comparison.
  st.pressure.CrossValidate("test_pressure_tracker");
}

TEST(PressureTrackerDifferential, PureClustered) {
  RunDifferential("4C32/1-1", 1);
  RunDifferential("2C16/2-1", 2);
}

TEST(PressureTrackerDifferential, HierarchicalClustered) {
  RunDifferential("4C16S64/2-1", 3);
  RunDifferential("2C16S16/1-1", 4);
}

TEST(PressureTrackerDifferential, HierarchicalNonClustered) {
  RunDifferential("1C32S32/2-1", 5);
}

TEST(PressureTrackerDifferential, Monolithic) {
  RunDifferential("S64", 6);
  RunDifferential("S32", 7);
}

// A second attempt at a different II must fully reset tracker state.
TEST(PressureTracker, ReattachAcrossAttempts) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("S32"));
  std::mt19937 rng(11);
  const DDG original = RandomGraph(rng, 12, 1);
  SchedState st(m);
  for (int attempt = 0; attempt < 3; ++attempt) {
    st.Reset(original, {}, 3 + attempt);
    for (NodeId v = 0; v < st.g.NumSlots(); v += 2) {
      st.Assign(v, {attempt + static_cast<int>(v), 0, 0, true});
    }
    ExpectMatchesGroundTruth(st, m, attempt);
  }
}

// Unbounded organizations skip the tracker entirely (nothing ever reads
// pressure there).
TEST(PressureTracker, UnboundedOrganizationsDetach) {
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("Sinf"));
  std::mt19937 rng(13);
  const DDG original = RandomGraph(rng, 8, 0);
  SchedState st(m);
  st.Reset(original, {}, 4);
  EXPECT_FALSE(st.pressure.attached());
}

// ---------------------------------------------------------------------------
// Engine-level A/B: the incremental engine must produce bit-identical
// schedules to the reference (non-incremental) engine.
// ---------------------------------------------------------------------------

void ExpectEngineIdentical(const std::string& rf_name) {
  SCOPED_TRACE(rf_name);
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf_name));
  const workload::Suite& kernels = workload::SharedKernelSuite();
  for (size_t i = 0; i < kernels.size(); i += 2) {
    core::MirsOptions ref_opt;
    ref_opt.incremental = false;
    core::MirsOptions inc_opt;
    inc_opt.incremental = true;
    const core::ScheduleResult a = core::MirsHC(kernels[i].ddg, m, ref_opt);
    const core::ScheduleResult b = core::MirsHC(kernels[i].ddg, m, inc_opt);
    ASSERT_EQ(a.ok, b.ok) << kernels[i].ddg.name();
    if (!a.ok) continue;
    EXPECT_EQ(io::DumpResult(a), io::DumpResult(b)) << kernels[i].ddg.name();
  }
}

TEST(PressureTrackerEngine, BitIdenticalSchedules) {
  ExpectEngineIdentical("4C16S64/2-1");
  ExpectEngineIdentical("4C32/1-1");
  ExpectEngineIdentical("S32");
  ExpectEngineIdentical("2C16S16/1-1");
}

}  // namespace
}  // namespace hcrf
