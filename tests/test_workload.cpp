// Tests of the synthetic Perfect Club stand-in: determinism, structural
// validity, and the distributional fingerprints the substitution promises
// (see DESIGN.md): bound-class mix under S128 and register pressure that
// separates 32/64/128-register organizations.
#include <gtest/gtest.h>

#include "core/mirs.h"
#include "ddg/mii.h"
#include "sched/lifetime.h"
#include "workload/perfect_synth.h"

namespace hcrf::workload {
namespace {

TEST(PerfectSynth, DeterministicInSeed) {
  SynthParams p;
  p.num_loops = 40;
  const Suite a = PerfectSynthetic(p);
  const Suite b = PerfectSynthetic(p);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ddg.NumNodes(), b[i].ddg.NumNodes());
    EXPECT_EQ(a[i].ddg.NumEdges(), b[i].ddg.NumEdges());
    EXPECT_EQ(a[i].trip, b[i].trip);
    EXPECT_EQ(a[i].invocations, b[i].invocations);
  }
  SynthParams q = p;
  q.seed = 1;
  const Suite c = PerfectSynthetic(q);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ddg.NumNodes() != c[i].ddg.NumNodes()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PerfectSynth, AllLoopsStructurallyValid) {
  SynthParams p;
  p.num_loops = 300;
  const Suite synth_suite = PerfectSynthetic(p);
  for (const Loop& loop : synth_suite.loops()) {
    std::string why;
    ASSERT_TRUE(loop.ddg.Check(&why)) << loop.ddg.name() << ": " << why;
    EXPECT_GT(loop.ddg.NumNodes(), 0);
    EXPECT_GT(loop.trip, 0);
    EXPECT_GT(loop.invocations, 0);
    // Memory ops carry refs; loops are software-pipelineable (no
    // zero-distance cycles is implied by Check + MII finiteness).
    for (NodeId v = 0; v < loop.ddg.NumSlots(); ++v) {
      if (IsMemory(loop.ddg.node(v).op)) {
        EXPECT_TRUE(loop.ddg.node(v).mem.has_value());
      }
    }
    const MachineConfig m = MachineConfig::Baseline();
    EXPECT_GE(ComputeMII(loop.ddg, m).MII(), 1);
  }
}

TEST(PerfectSynth, BoundClassMixNearPaper) {
  // Table 1, S128 column: 20.0% FU / 50.9% Mem / 29.1% Rec / 0.0% Com.
  SynthParams p;
  p.num_loops = 500;
  const Suite suite = PerfectSynthetic(p);
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("S128"));
  int counts[4] = {0, 0, 0, 0};
  int total = 0;
  for (const Loop& loop : suite.loops()) {
    const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
    if (!sr.ok) continue;
    ++counts[static_cast<int>(sr.bound)];
    ++total;
  }
  const double fu = 100.0 * counts[0] / total;
  const double mem = 100.0 * counts[1] / total;
  const double rec = 100.0 * counts[2] / total;
  EXPECT_NEAR(fu, 20.0, 8.0);
  EXPECT_NEAR(mem, 50.9, 8.0);
  EXPECT_NEAR(rec, 29.1, 8.0);
}

TEST(PerfectSynth, RegisterPressureSeparatesOrganizations) {
  // The paper's Table 6 needs: S128 ~ no spill, S64 some spill traffic,
  // S32 a lot. Check the MaxLive distribution supports that.
  SynthParams p;
  p.num_loops = 300;
  const Suite suite = PerfectSynthetic(p);
  const MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("Sinf"));
  int over32 = 0;
  int over64 = 0;
  int over128 = 0;
  int total = 0;
  for (const Loop& loop : suite.loops()) {
    const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
    if (!sr.ok) continue;
    const auto pr =
        sched::ComputePressure(sr.graph, sr.schedule, m, sr.overrides);
    ++total;
    if (pr.shared_maxlive > 32) ++over32;
    if (pr.shared_maxlive > 64) ++over64;
    if (pr.shared_maxlive > 128) ++over128;
  }
  EXPECT_GT(over32, total / 8);        // S32 spills broadly
  EXPECT_GT(over64, total / 50);       // S64 spills on a visible tail
  EXPECT_LT(over128, total / 20);      // S128 nearly spill-free
}

TEST(PerfectSynth, TripsDwarfPipelineFill) {
  // The execution-cycle estimate II*(N + (SC-1)*E) must be dominated by N.
  SynthParams p;
  p.num_loops = 200;
  const Suite synth_suite = PerfectSynthetic(p);
  for (const Loop& loop : synth_suite.loops()) {
    EXPECT_GE(loop.trip, 100) << loop.ddg.name();
    EXPECT_LE(loop.invocations, 32);
  }
}

TEST(PerfectSynth, SpeciesInNames) {
  SynthParams p;
  p.num_loops = 100;
  int stream = 0;
  int other = 0;
  const Suite synth_suite = PerfectSynthetic(p);
  for (const Loop& loop : synth_suite.loops()) {
    if (loop.ddg.name().find("stream") != std::string::npos) {
      ++stream;
    } else {
      ++other;
    }
  }
  EXPECT_GT(stream, 20);
  EXPECT_GT(other, 20);
}

}  // namespace
}  // namespace hcrf::workload
