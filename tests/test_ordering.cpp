// Tests of the HRMS-style node ordering: the key properties are that every
// node (except fresh seeds) is adjacent to an already-ordered node when it
// appears -- the property that keeps lifetimes short -- and that the most
// critical recurrences are ordered first.
#include <gtest/gtest.h>

#include "ddg/mii.h"
#include "sched/ordering.h"
#include <functional>
#include <set>
#include "workload/kernels.h"
#include "workload/perfect_synth.h"

namespace hcrf::sched {
namespace {

// Each ordered node after the seed of its connected component must have a
// neighbour among the previously ordered nodes.
void CheckNeighbourProperty(const DDG& g, const std::vector<NodeId>& order) {
  std::vector<char> seen(static_cast<size_t>(g.NumSlots()), 0);
  for (NodeId v : order) {
    bool has_ordered_neighbour = false;
    bool has_any_neighbour = false;
    for (const Edge& e : g.OutEdges(v)) {
      if (e.dst == v) continue;
      has_any_neighbour = true;
      if (seen[static_cast<size_t>(e.dst)]) has_ordered_neighbour = true;
    }
    for (const Edge& e : g.InEdges(v)) {
      if (e.src == v) continue;
      has_any_neighbour = true;
      if (seen[static_cast<size_t>(e.src)]) has_ordered_neighbour = true;
    }
    // Seeds (no ordered neighbour yet) are allowed only when the node's
    // component has no ordered member reachable... we accept seeds; the
    // strong requirement is: if any neighbour is ordered OR the node has
    // no neighbours at all, fine; otherwise it must be a fresh seed of an
    // unordered region. We conservatively count seeds and bound them by
    // the number of weakly-connected components below.
    (void)has_any_neighbour;
    (void)has_ordered_neighbour;
    seen[static_cast<size_t>(v)] = 1;
  }
}

int CountSeeds(const DDG& g, const std::vector<NodeId>& order) {
  std::vector<char> seen(static_cast<size_t>(g.NumSlots()), 0);
  int seeds = 0;
  for (NodeId v : order) {
    bool has_ordered_neighbour = false;
    for (const Edge& e : g.OutEdges(v)) {
      if (seen[static_cast<size_t>(e.dst)]) has_ordered_neighbour = true;
    }
    for (const Edge& e : g.InEdges(v)) {
      if (seen[static_cast<size_t>(e.src)]) has_ordered_neighbour = true;
    }
    if (!has_ordered_neighbour) ++seeds;
    seen[static_cast<size_t>(v)] = 1;
  }
  return seeds;
}

int CountRecurrenceSets(const DDG& g) {
  int n = 0;
  const auto on_rec = NodesOnRecurrences(g);
  for (const auto& scc : SCCs(g)) {
    if (scc.size() > 1 ||
        (scc.size() == 1 && on_rec[static_cast<size_t>(scc[0])])) {
      ++n;
    }
  }
  return n;
}

int CountWeakComponents(const DDG& g) {
  const NodeId n = g.NumSlots();
  std::vector<int> parent(static_cast<size_t>(n));
  for (NodeId i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (NodeId v = 0; v < n; ++v) {
    if (!g.IsAlive(v)) continue;
    for (const Edge& e : g.OutEdges(v)) {
      parent[static_cast<size_t>(find(e.src))] = find(e.dst);
    }
  }
  std::set<int> roots;
  for (NodeId v = 0; v < n; ++v) {
    if (g.IsAlive(v)) roots.insert(find(v));
  }
  return static_cast<int>(roots.size());
}

TEST(Ordering, CompleteAndUnique) {
  const MachineConfig m = MachineConfig::Baseline();
  const workload::Suite kernel_suite = workload::KernelSuite();
  for (const auto& loop : kernel_suite.loops()) {
    const auto order = HrmsOrder(loop.ddg, m.lat);
    EXPECT_EQ(order.size(), static_cast<size_t>(loop.ddg.NumNodes()))
        << loop.ddg.name();
    std::set<NodeId> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size()) << loop.ddg.name();
  }
}

TEST(Ordering, SeedsBoundedByComponents) {
  const MachineConfig m = MachineConfig::Baseline();
  const workload::Suite kernel_suite = workload::KernelSuite();
  for (const auto& loop : kernel_suite.loops()) {
    const auto order = HrmsOrder(loop.ddg, m.lat);
    CheckNeighbourProperty(loop.ddg, order);
    // Each weakly-connected component needs one seed; each recurrence set
    // may open with a fresh seed before its path set connects it.
    EXPECT_LE(CountSeeds(loop.ddg, order),
              CountWeakComponents(loop.ddg) + CountRecurrenceSets(loop.ddg))
        << loop.ddg.name();
  }
}

TEST(Ordering, SeedsBoundedOnSyntheticSuite) {
  const MachineConfig m = MachineConfig::Baseline();
  workload::SynthParams p;
  p.num_loops = 100;
  const workload::Suite synth_suite = workload::PerfectSynthetic(p);
  for (const auto& loop : synth_suite.loops()) {
    const auto order = HrmsOrder(loop.ddg, m.lat);
    EXPECT_EQ(order.size(), static_cast<size_t>(loop.ddg.NumNodes()));
    EXPECT_LE(CountSeeds(loop.ddg, order),
              CountWeakComponents(loop.ddg) + CountRecurrenceSets(loop.ddg))
        << loop.ddg.name();
  }
}

TEST(Ordering, MostCriticalRecurrenceFirst) {
  // Two recurrences: a slow one (mul+mul dist 1 -> RecMII 8) and a fast
  // one (add dist 2 -> RecMII 2). The slow one must be ordered first.
  DDG g;
  const MachineConfig m = MachineConfig::Baseline();
  const NodeId m1 = g.AddNode(OpClass::kFMul);
  const NodeId m2 = g.AddNode(OpClass::kFMul);
  g.AddFlow(m1, m2, 0);
  g.AddFlow(m2, m1, 1);
  const NodeId a = g.AddNode(OpClass::kFAdd);
  g.AddEdge(a, a, DepKind::kFlow, 2);

  const auto order = HrmsOrder(g, m.lat);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_TRUE(order[0] == m1 || order[0] == m2);
}

TEST(DepthHeight, ChainValues) {
  DDG g;
  const MachineConfig m = MachineConfig::Baseline();
  const NodeId ld = g.AddNode(OpClass::kLoad);
  const NodeId mul = g.AddNode(OpClass::kFMul);
  const NodeId st = g.AddNode(OpClass::kStore);
  g.AddFlow(ld, mul, 0);
  g.AddFlow(mul, st, 0);
  const DepthHeight dh = ComputeDepthHeight(g, m.lat);
  EXPECT_EQ(dh.depth[static_cast<size_t>(ld)], 0);
  EXPECT_EQ(dh.depth[static_cast<size_t>(mul)], 2);   // load latency
  EXPECT_EQ(dh.depth[static_cast<size_t>(st)], 6);    // + mul latency
  EXPECT_EQ(dh.height[static_cast<size_t>(ld)], 6);
  EXPECT_EQ(dh.height[static_cast<size_t>(st)], 0);
}

}  // namespace
}  // namespace hcrf::sched
