// Design-space sweep service: spec round-trips and strictness, grid
// expansion (dedup + skipped invalid combinations), and the acceptance
// path — a cold sweep then a warm sweep must be fully cache-served and
// emit bit-identical reports. HCRF_CORPUS_DIR points at <repo>/corpus.
#include <gtest/gtest.h>

#include <filesystem>

#include "io/hcl.h"
#include "service/sweep.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;
using service::ExpandSweepMachines;
using service::LoadSweepSpecFile;
using service::ParseSweepSpec;
using service::RunSweep;
using service::SweepPlan;
using service::SweepReport;
using service::SweepSpec;

std::string CorpusPath(const std::string& rel) {
  return (fs::path(HCRF_CORPUS_DIR) / rel).string();
}

TEST(SweepSpec, ParsesAndRoundTripsCanonically) {
  const std::string text =
      "hcl 1 sweep\n"
      "name t\n"
      "suite kernels\n"
      "graph a.hcl\n"
      "rf S128\n"
      "grid clusters 2 4\n"
      "grid cluster_regs 16\n"
      "grid shared_regs 0 64\n"
      "fus 8\n"
      "mem_ports 4\n"
      "characterize 0\n"
      "budget 4.5\n"
      "max_ii 128\n"
      "iterative 0\n"
      "policy first-fit\n"
      "end\n";
  const SweepSpec spec = ParseSweepSpec(text, "<test>");
  EXPECT_EQ(DumpSweepSpec(spec), text);
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.suites, std::vector<std::string>{"kernels"});
  EXPECT_EQ(spec.grid_clusters, (std::vector<int>{2, 4}));
  EXPECT_EQ(spec.grid_shared_regs, (std::vector<int>{0, 64}));
  EXPECT_FALSE(spec.characterize);
  EXPECT_EQ(spec.budget_ratio, 4.5);
  EXPECT_EQ(spec.max_ii, 128);
  EXPECT_EQ(spec.iterative, false);
  EXPECT_EQ(spec.policy, core::ClusterPolicy::kFirstFit);
}

TEST(SweepSpec, RejectsMalformedSpecsWithLineNumbers) {
  const auto expect_line = [](const std::string& text, int line) {
    try {
      ParseSweepSpec(text, "<test>");
      FAIL() << "expected HclError for: " << text;
    } catch (const io::HclError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  // Wrong document kind.
  expect_line("hcl 1 loop\nend\n", 1);
  // Unknown suite / malformed rf / unknown directive.
  expect_line("hcl 1 sweep\nsuite perfect\nrf S128\nend\n", 2);
  expect_line("hcl 1 sweep\nsuite kernels\nrf 4X32\nend\n", 3);
  expect_line("hcl 1 sweep\nfrobs 1\nend\n", 2);
  // Incomplete grid (all three axes or none).
  expect_line("hcl 1 sweep\nsuite kernels\ngrid clusters 2\nend\n", 3);
  // Duplicate axis, axis below minimum.
  expect_line(
      "hcl 1 sweep\ngrid clusters 2\ngrid clusters 4\nend\n", 3);
  expect_line("hcl 1 sweep\ngrid clusters 0\nend\n", 2);
  // No workload / no organizations / missing end.
  expect_line("hcl 1 sweep\nrf S128\nend\n", 3);
  expect_line("hcl 1 sweep\nsuite kernels\nend\n", 3);
  expect_line("hcl 1 sweep\nsuite kernels\nrf S128\n", 3);
}

TEST(SweepPlan, GridExpandsDedupsAndSkipsInvalidCombos) {
  SweepSpec spec;
  spec.suites = {"kernels"};
  spec.rfs = {"S128", "4C16S64"};
  spec.grid_clusters = {2, 4, 8};
  spec.grid_cluster_regs = {16};
  spec.grid_shared_regs = {0, 64};
  spec.characterize = false;
  const SweepPlan plan =
      ExpandSweepMachines(spec, hw::RFModelMode::kPaperTable);
  // Explicit organizations first, then the grid cross product in
  // clusters-major order; the grid's 4C16S64 duplicates the explicit one
  // and 8C16 (pure clustered, 8 clusters > 4 memory ports) is skipped.
  std::vector<std::string> orgs;
  for (const service::SweepMachine& sm : plan.machines) orgs.push_back(sm.org);
  EXPECT_EQ(orgs, (std::vector<std::string>{
                      "S128", "4C16S64/2-1", "2C16/1-1", "2C16S64/3-1",
                      "4C16/1-1", "8C16S64/1-1"}));
  ASSERT_EQ(plan.skipped.size(), 1u);
  EXPECT_EQ(plan.skipped[0].substr(0, 8), "8C16/1-1");
}

TEST(SweepSpec, CheckedInSpecsAreCanonicalAndExpand) {
  int seen = 0;
  const fs::path dir = fs::path(HCRF_CORPUS_DIR) / "sweeps";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".hcl") continue;
    ++seen;
    const std::string text = io::ReadFile(entry.path().string());
    const SweepSpec spec =
        ParseSweepSpec(text, entry.path().filename().string());
    EXPECT_EQ(text, DumpSweepSpec(spec)) << entry.path();
  }
  EXPECT_GE(seen, 2);

  // The paper grid: at least the three organization families, none
  // silently dropped.
  const SweepSpec paper =
      LoadSweepSpecFile(CorpusPath("sweeps/paper-organizations.hcl"));
  const SweepPlan plan =
      ExpandSweepMachines(paper, hw::RFModelMode::kPaperTable);
  EXPECT_GE(plan.machines.size(), 3u);
  EXPECT_TRUE(plan.skipped.empty());
  bool mono = false, clustered = false, hier = false;
  for (const service::SweepMachine& sm : plan.machines) {
    const RFKind kind = sm.machine.rf.Kind();
    mono |= kind == RFKind::kMonolithic;
    clustered |= kind == RFKind::kClustered;
    hier |= kind == RFKind::kHierarchical ||
            kind == RFKind::kHierarchicalClustered;
  }
  EXPECT_TRUE(mono && clustered && hier);
}

// The subsystem's acceptance criterion: a cold sweep populates the
// schedule cache; a warm rerun of the same spec is served entirely from
// it and emits bit-identical CSV and markdown reports.
TEST(Sweep, ColdThenWarmIsBitIdenticalAndFullyCacheServed) {
  SweepSpec spec;
  spec.name = "accept";
  spec.graphs = {CorpusPath("kernels/daxpy.hcl"),
                 CorpusPath("kernels/dot.hcl")};
  spec.rfs = {"S128", "4C32", "4C16S64"};

  const fs::path dir = fs::path(::testing::TempDir()) / "hcrf-sweep-accept";
  fs::remove_all(dir);
  service::SweepOptions opt;
  opt.cache_dir = (dir / "cache").string();
  opt.threads = 2;

  const SweepReport cold = RunSweep(spec, dir.string(), opt);
  EXPECT_EQ(cold.orgs.size(), 3u);
  EXPECT_EQ(cold.loops.size(), 2u);
  EXPECT_EQ(cold.hits, 0);
  EXPECT_EQ(cold.scheduled, 6);
  EXPECT_EQ(cold.failed, 0);

  const SweepReport warm = RunSweep(spec, dir.string(), opt);
  EXPECT_EQ(warm.scheduled, 0);
  EXPECT_EQ(warm.hits, static_cast<int>(warm.cells.size()));
  for (const service::SweepCell& c : warm.cells) {
    EXPECT_TRUE(c.cache_hit) << c.org << "/" << c.loop;
  }
  EXPECT_EQ(service::SweepCsv(cold), service::SweepCsv(warm));
  EXPECT_EQ(service::SweepMarkdown(cold), service::SweepMarkdown(warm));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hcrf
