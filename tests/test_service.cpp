// Batch scheduling service: manifest parsing, parallel dispatch, and the
// acceptance path — scheduling the checked-in corpus end-to-end, then
// re-running warm and getting every request served bit-identically from
// the persistent cache. HCRF_CORPUS_DIR points at <repo>/corpus.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "io/hcl.h"
#include "service/batch.h"
#include "workload/kernels.h"

namespace hcrf {
namespace {

namespace fs = std::filesystem;

std::string CorpusPath(const std::string& rel) {
  return (fs::path(HCRF_CORPUS_DIR) / rel).string();
}

TEST(Manifest, ParsesRequestsWithDefaultsAndOverrides) {
  const auto entries = service::ParseManifest(
      "hcl 1 manifest\n"
      "# comment\n"
      "request graph a.hcl\n"
      "request graph b.hcl rf 4C32/1-1 characterize 0 budget 3.5 max_ii 64 "
      "iterative 0 policy first-fit\n"
      "end\n",
      "<test>");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].graph, "a.hcl");
  EXPECT_EQ(entries[0].rf, "S128");
  EXPECT_TRUE(entries[0].characterize);
  EXPECT_EQ(entries[1].rf, "4C32/1-1");
  EXPECT_FALSE(entries[1].characterize);
  EXPECT_EQ(entries[1].budget_ratio, 3.5);
  EXPECT_EQ(entries[1].max_ii, 64);
  EXPECT_EQ(entries[1].iterative, false);
  EXPECT_EQ(entries[1].policy, core::ClusterPolicy::kFirstFit);
}

TEST(Manifest, RejectsMalformedInputWithLineNumbers) {
  const auto expect_line = [](const std::string& text, int line) {
    try {
      service::ParseManifest(text, "<test>");
      FAIL() << "expected HclError for: " << text;
    } catch (const io::HclError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_line("request graph a.hcl\n", 1);  // missing header
  expect_line("hcl 1 manifest\nrequest rf S128\nend\n", 2);  // no graph
  expect_line("hcl 1 manifest\nrequest graph a.hcl frobs 1\nend\n", 2);
  expect_line("hcl 1 manifest\nrequest graph a.hcl\n", 2);  // missing end
  expect_line("hcl 1 manifest\nend\nrequest graph a.hcl\n", 3);
  // `machine` excludes rf/characterize even at their default values.
  expect_line(
      "hcl 1 manifest\nrequest graph a.hcl machine m.hcl rf S128\nend\n", 2);
  expect_line(
      "hcl 1 manifest\nrequest graph a.hcl machine m.hcl characterize 1\n"
      "end\n",
      2);
}

TEST(BatchService, SchedulesRequestsWithoutACache) {
  service::BatchRequest req;
  req.id = "daxpy";
  req.loop = std::make_shared<const workload::Loop>(workload::MakeDaxpy());
  req.machine = MachineConfig::Baseline();
  const service::BatchReport report = service::RunBatch({req}, {});
  ASSERT_EQ(report.items.size(), 1u);
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_FALSE(report.items[0].cache_hit);
  EXPECT_EQ(report.scheduled, 1);
  EXPECT_EQ(report.hits, 0);
  EXPECT_EQ(report.failed, 0);
}

TEST(BatchService, MissingGraphFileFailsItsItemOnly) {
  const fs::path dir = fs::path(::testing::TempDir()) / "hcrf-manifest-miss";
  fs::create_directories(dir);
  io::WriteFileAtomic((dir / "ok.hcl").string(),
                      io::DumpLoop(workload::MakeDot()));
  io::WriteFileAtomic((dir / "m.manifest").string(),
                      "hcl 1 manifest\n"
                      "request graph ok.hcl\n"
                      "request graph missing.hcl\n"
                      "end\n");
  const service::BatchReport report =
      service::RunManifest((dir / "m.manifest").string(), {});
  ASSERT_EQ(report.items.size(), 2u);
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_FALSE(report.items[1].error.empty());
  EXPECT_EQ(report.failed, 1);
  fs::remove_all(dir);
}

// The subsystem's acceptance criterion: run the checked-in corpus manifest
// cold, then warm against the same cache; the warm run must be served
// entirely from the cache and produce bit-identical schedule output.
TEST(BatchService, CorpusManifestColdThenWarmIsBitIdentical) {
  const std::string manifest = CorpusPath("kernels.manifest");
  ASSERT_TRUE(fs::exists(manifest)) << manifest;

  service::BatchOptions opt;
  const fs::path cache_dir =
      fs::path(::testing::TempDir()) / "hcrf-corpus-cache";
  fs::remove_all(cache_dir);
  opt.cache_dir = cache_dir.string();

  const service::BatchReport cold = service::RunManifest(manifest, opt);
  ASSERT_GT(cold.items.size(), 0u);
  EXPECT_EQ(cold.failed, 0);
  EXPECT_GT(cold.scheduled, 0);
  for (const service::BatchItem& item : cold.items) {
    EXPECT_TRUE(item.ok) << item.id << ": " << item.error;
  }

  const service::BatchReport warm = service::RunManifest(manifest, opt);
  EXPECT_EQ(warm.failed, 0);
  EXPECT_EQ(warm.scheduled, 0);
  EXPECT_GT(warm.hits, 0);
  EXPECT_EQ(warm.hits, static_cast<int>(warm.items.size()));
  EXPECT_EQ(warm.cache.hits, static_cast<long>(warm.items.size()));

  ASSERT_EQ(cold.items.size(), warm.items.size());
  for (size_t i = 0; i < cold.items.size(); ++i) {
    EXPECT_TRUE(warm.items[i].cache_hit) << warm.items[i].id;
    EXPECT_EQ(io::DumpResult(cold.items[i].result),
              io::DumpResult(warm.items[i].result))
        << cold.items[i].id;
  }
  fs::remove_all(cache_dir);
}

// Every checked-in corpus file must stay loadable and canonical (dump ==
// file bytes), so the corpus can't rot as the format evolves.
TEST(BatchService, CheckedInCorpusFilesAreCanonical) {
  int seen = 0;
  for (const char* sub : {"kernels", "synth"}) {
    const fs::path dir = fs::path(HCRF_CORPUS_DIR) / sub;
    ASSERT_TRUE(fs::exists(dir)) << dir;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() != ".hcl") continue;
      ++seen;
      const std::string text = io::ReadFile(entry.path().string());
      const workload::Loop loop =
          io::ParseLoop(text, entry.path().filename().string());
      EXPECT_EQ(text, io::DumpLoop(loop)) << entry.path();
    }
  }
  EXPECT_GE(seen, 12 + 16);
}

}  // namespace
}  // namespace hcrf
