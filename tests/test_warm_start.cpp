// Warm-start differential suite: every kernel loop, across the paper's
// three RF organization families, is perturbed (one load hardened toward
// its miss latency) and re-scheduled cold vs warm-started from the
// unperturbed base schedule. A warm schedule must pass full validation
// and its II must never exceed the cold II; a rejected seed must fall
// back to the cold path and produce bit-identical bytes (the fallback is
// counted in telemetry, never silent). Runs under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/mirs.h"
#include "hwmodel/characterize.h"
#include "io/hcl.h"
#include "machine/machine_config.h"
#include "sched/validate.h"
#include "workload/suite_cache.h"

namespace hcrf {
namespace {

MachineConfig OrgMachine(const std::string& rf) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse(rf));
  if (!m.rf.UnboundedClusterRegs() && !m.rf.UnboundedSharedRegs()) {
    m = hw::ApplyCharacterization(m, hw::RFModelMode::kPaperTable);
  }
  return m;
}

NodeId FirstAliveLoad(const DDG& g) {
  for (NodeId v = 0; v < g.NumSlots(); ++v) {
    if (g.IsAlive(v) && g.node(v).op == OpClass::kLoad) return v;
  }
  return -1;
}

/// Hardens one load's producer latency (toward, at least past, its hit
/// latency). Hardening only shrinks the feasible-II set, so warm II <=
/// cold II is an analytic guarantee on these perturbations, not just a
/// measured one.
sched::LatencyOverrides HardenLoad(const DDG& g, NodeId load,
                                   const MachineConfig& m) {
  sched::LatencyOverrides ov;
  ov.producer_latency.assign(static_cast<size_t>(g.NumSlots()), 0);
  ov.producer_latency[static_cast<size_t>(load)] =
      std::max(m.lat.load_miss, m.lat.load_hit + 1);
  return ov;
}

TEST(WarmStartTest, DifferentialOverCorpusAndOrgs) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  ASSERT_GT(kernels.size(), 0u);
  int perturbed = 0;
  int used = 0;
  for (const char* rf : {"4C16S64/2-1", "4C32/1-1", "S64"}) {
    const MachineConfig m = OrgMachine(rf);
    for (size_t i = 0; i < kernels.size(); ++i) {
      const DDG& ddg = kernels[i].ddg;
      core::MirsOptions opt;
      const core::ScheduleResult base = core::MirsHC(ddg, m, opt);
      if (!base.ok) continue;
      const NodeId load = FirstAliveLoad(ddg);
      if (load < 0) continue;
      const sched::LatencyOverrides ov = HardenLoad(ddg, load, m);

      const core::ScheduleResult cold = core::MirsHC(ddg, m, opt, ov);
      opt.warm_start = std::make_shared<const core::ScheduleResult>(base);
      const core::ScheduleResult warm = core::MirsHC(ddg, m, opt, ov);
      ++perturbed;

      EXPECT_TRUE(warm.warm.attempted) << rf << " loop " << i;
      EXPECT_EQ(cold.ok, warm.ok) << rf << " loop " << i;
      if (!warm.ok) continue;
      const sched::ValidationResult v =
          sched::Validate(warm.graph, warm.schedule, m, warm.overrides);
      EXPECT_TRUE(v.ok) << rf << " loop " << i << ": " << v.error;
      if (warm.warm.used) {
        ++used;
        EXPECT_LE(warm.ii, cold.ii) << rf << " loop " << i;
        EXPECT_GT(warm.warm.seeded, 0) << rf << " loop " << i;
      } else {
        // A fallback is never silent: it is flagged and its bytes are the
        // cold path's, bit for bit (telemetry is not serialized).
        EXPECT_TRUE(warm.warm.fallback) << rf << " loop " << i;
        EXPECT_EQ(io::DumpResult(cold), io::DumpResult(warm))
            << rf << " loop " << i;
      }
    }
  }
  EXPECT_GT(perturbed, 0);
  EXPECT_GT(used, 0);  // the seed path must actually engage on the corpus
}

TEST(WarmStartTest, SeedAboveMaxIiFallsBackToColdBytes) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  ASSERT_GT(kernels.size(), 0u);
  const DDG& ddg = kernels[0].ddg;
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  core::MirsOptions opt;
  const core::ScheduleResult cold = core::MirsHC(ddg, m, opt);
  ASSERT_TRUE(cold.ok);

  // An incompatible seed: its II exceeds this run's escalation cap, so
  // the seeded attempt is never even started.
  auto seed = std::make_shared<core::ScheduleResult>(cold);
  seed->ii = opt.max_ii + 1;
  opt.warm_start = seed;
  const core::ScheduleResult warm = core::MirsHC(ddg, m, opt);
  EXPECT_TRUE(warm.warm.attempted);
  EXPECT_TRUE(warm.warm.fallback);
  EXPECT_FALSE(warm.warm.used);
  EXPECT_EQ(io::DumpResult(cold), io::DumpResult(warm));
}

TEST(WarmStartTest, FailedSeedIsNeverAttempted) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  ASSERT_GT(kernels.size(), 0u);
  const DDG& ddg = kernels[0].ddg;
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  core::MirsOptions opt;
  const core::ScheduleResult cold = core::MirsHC(ddg, m, opt);
  ASSERT_TRUE(cold.ok);

  auto seed = std::make_shared<core::ScheduleResult>(cold);
  seed->ok = false;  // e.g. a failed near-key entry: not a usable seed
  opt.warm_start = seed;
  const core::ScheduleResult warm = core::MirsHC(ddg, m, opt);
  EXPECT_FALSE(warm.warm.attempted);
  EXPECT_FALSE(warm.warm.used);
  EXPECT_EQ(io::DumpResult(cold), io::DumpResult(warm));
}

TEST(WarmStartTest, IdenticalSeedIsAcceptedAtItsII) {
  const workload::Suite& kernels = workload::SharedKernelSuite();
  ASSERT_GT(kernels.size(), 0u);
  const DDG& ddg = kernels[0].ddg;
  const MachineConfig m = OrgMachine("4C16S64/2-1");
  core::MirsOptions opt;
  const auto base =
      std::make_shared<const core::ScheduleResult>(core::MirsHC(ddg, m, opt));
  ASSERT_TRUE(base->ok);

  opt.warm_start = base;
  const core::ScheduleResult warm = core::MirsHC(ddg, m, opt);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.warm.attempted);
  EXPECT_TRUE(warm.warm.used);
  EXPECT_GT(warm.warm.seeded, 0);
  EXPECT_EQ(warm.ii, base->ii);
  const sched::ValidationResult v =
      sched::Validate(warm.graph, warm.schedule, m, warm.overrides);
  EXPECT_TRUE(v.ok) << v.error;
}

}  // namespace
}  // namespace hcrf
