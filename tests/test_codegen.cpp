// Tests of schedule bookkeeping (stage counts, normalization) and the VLIW
// code generator.
#include <gtest/gtest.h>

#include "core/mirs.h"
#include "sched/codegen.h"
#include "sched/schedule.h"
#include "workload/kernels.h"

namespace hcrf::sched {
namespace {

TEST(PartialSchedule, StageCountAndNormalize) {
  PartialSchedule s(4);
  s.Assign(0, {-3, 0, 0, true});
  s.Assign(1, {9, 0, 0, true});
  // Span: -3..9 at II=4. After normalizing min into [0,4): shift +4 ->
  // cycles 1..13 -> stages 0..3 -> SC 4.
  EXPECT_EQ(s.StageCount(), 4);
  s.Normalize();
  EXPECT_EQ(s.MinCycle(), 1);
  EXPECT_EQ(s.CycleOf(1), 13);
  EXPECT_EQ(s.StageCount(), 4);
}

TEST(PartialSchedule, UnassignReducesCount) {
  PartialSchedule s(2);
  s.Assign(0, {0, 0, 0, true});
  s.Assign(1, {1, 0, 0, true});
  EXPECT_EQ(s.NumScheduled(), 2);
  s.Unassign(0);
  EXPECT_EQ(s.NumScheduled(), 1);
  EXPECT_FALSE(s.IsScheduled(0));
  s.Unassign(0);  // idempotent
  EXPECT_EQ(s.NumScheduled(), 1);
}

TEST(Codegen, KernelShowsEveryOp) {
  const MachineConfig m = MachineConfig::Baseline();
  const auto loop = workload::MakeDaxpy();
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  const std::string kernel = RenderKernel(sr.graph, sr.schedule, m);
  EXPECT_NE(kernel.find("load"), std::string::npos);
  EXPECT_NE(kernel.find("fmul"), std::string::npos);
  EXPECT_NE(kernel.find("store"), std::string::npos);
  EXPECT_NE(kernel.find("II=1"), std::string::npos);
}

TEST(Codegen, ClusterAnnotationsOnClusteredMachines) {
  MachineConfig m = MachineConfig::WithRF(RFConfig::Parse("4C32/1-1"));
  const auto loop = workload::MakeDaxpy();
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  const std::string kernel = RenderKernel(sr.graph, sr.schedule, m);
  EXPECT_NE(kernel.find("[cl"), std::string::npos);
}

TEST(Codegen, StatsAccountPrologue) {
  const MachineConfig m = MachineConfig::Baseline();
  const auto loop = workload::MakeHydro();
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  const CodegenStats cg = ComputeCodegenStats(sr.graph, sr.schedule);
  EXPECT_EQ(cg.ii, sr.ii);
  EXPECT_EQ(cg.stage_count, sr.sc);
  EXPECT_EQ(cg.kernel_ops, sr.graph.NumNodes());
  EXPECT_GE(cg.code_size_ops, cg.kernel_ops);
}

TEST(Codegen, EveryKernelRowPrinted) {
  const MachineConfig m = MachineConfig::Baseline();
  const auto loop = workload::MakeDot();  // II = 4 (RecMII)
  const core::ScheduleResult sr = core::MirsHC(loop.ddg, m);
  ASSERT_TRUE(sr.ok);
  ASSERT_EQ(sr.ii, 4);
  const std::string kernel = RenderKernel(sr.graph, sr.schedule, m);
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(kernel.find("cycle " + std::to_string(r)), std::string::npos);
  }
}

}  // namespace
}  // namespace hcrf::sched
